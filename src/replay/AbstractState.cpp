//===- replay/AbstractState.cpp - Abstract object semantics -------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "replay/AbstractState.h"

#include <sstream>

using namespace crd;

AbstractObject::~AbstractObject() = default;

//===----------------------------------------------------------------------===//
// AbstractDictionary
//===----------------------------------------------------------------------===//

std::unique_ptr<AbstractObject> AbstractDictionary::clone() const {
  auto Copy = std::make_unique<AbstractDictionary>();
  Copy->Entries = Entries;
  return Copy;
}

bool AbstractDictionary::apply(const Action &A) {
  Symbol M = A.method();
  if (M == symbol("put")) {
    if (A.args().size() != 2 || A.rets().size() != 1)
      return false;
    const Value &Key = A.args()[0];
    auto It = Entries.find(Key);
    Value Current = It == Entries.end() ? Value::nil() : It->second;
    if (A.rets()[0] != Current)
      return false; // p = d(k) violated.
    const Value &NewValue = A.args()[1];
    if (NewValue.isNil())
      Entries.erase(Key);
    else
      Entries[Key] = NewValue;
    return true;
  }
  if (M == symbol("get")) {
    if (A.args().size() != 1 || A.rets().size() != 1)
      return false;
    auto It = Entries.find(A.args()[0]);
    Value Current = It == Entries.end() ? Value::nil() : It->second;
    return A.rets()[0] == Current;
  }
  if (M == symbol("size")) {
    if (!A.args().empty() || A.rets().size() != 1)
      return false;
    return A.rets()[0] ==
           Value::integer(static_cast<int64_t>(Entries.size()));
  }
  return false; // Unknown dictionary method.
}

bool AbstractDictionary::equals(const AbstractObject &Other) const {
  if (Other.kind() != kind())
    return false;
  return static_cast<const AbstractDictionary &>(Other).Entries == Entries;
}

std::string AbstractDictionary::toString() const {
  std::ostringstream OS;
  OS << "dict{";
  bool First = true;
  for (const auto &[Key, Val] : Entries) {
    if (!First)
      OS << ", ";
    First = false;
    OS << Key << " -> " << Val;
  }
  OS << '}';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// AbstractSet
//===----------------------------------------------------------------------===//

std::unique_ptr<AbstractObject> AbstractSet::clone() const {
  auto Copy = std::make_unique<AbstractSet>();
  Copy->Members = Members;
  return Copy;
}

bool AbstractSet::apply(const Action &A) {
  Symbol M = A.method();
  if (M == symbol("add") || M == symbol("remove")) {
    if (A.args().size() != 1 || A.rets().size() != 1)
      return false;
    const Value &Key = A.args()[0];
    bool Present = Members.count(Key) != 0;
    bool Changes = M == symbol("add") ? !Present : Present;
    if (A.rets()[0] != Value::boolean(Changes))
      return false;
    if (M == symbol("add"))
      Members[Key] = true;
    else
      Members.erase(Key);
    return true;
  }
  if (M == symbol("contains")) {
    if (A.args().size() != 1 || A.rets().size() != 1)
      return false;
    return A.rets()[0] == Value::boolean(Members.count(A.args()[0]) != 0);
  }
  if (M == symbol("size")) {
    if (!A.args().empty() || A.rets().size() != 1)
      return false;
    return A.rets()[0] ==
           Value::integer(static_cast<int64_t>(Members.size()));
  }
  return false;
}

bool AbstractSet::equals(const AbstractObject &Other) const {
  if (Other.kind() != kind())
    return false;
  return static_cast<const AbstractSet &>(Other).Members == Members;
}

std::string AbstractSet::toString() const {
  std::ostringstream OS;
  OS << "set{";
  bool First = true;
  for (const auto &[Key, Present] : Members) {
    (void)Present;
    if (!First)
      OS << ", ";
    First = false;
    OS << Key;
  }
  OS << '}';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// AbstractCounter
//===----------------------------------------------------------------------===//

std::unique_ptr<AbstractObject> AbstractCounter::clone() const {
  auto Copy = std::make_unique<AbstractCounter>();
  Copy->Count = Count;
  return Copy;
}

bool AbstractCounter::apply(const Action &A) {
  Symbol M = A.method();
  if (M == symbol("inc")) {
    ++Count;
    return A.rets().empty();
  }
  if (M == symbol("dec")) {
    --Count;
    return A.rets().empty();
  }
  if (M == symbol("read"))
    return A.rets().size() == 1 && A.rets()[0] == Value::integer(Count);
  return false;
}

bool AbstractCounter::equals(const AbstractObject &Other) const {
  if (Other.kind() != kind())
    return false;
  return static_cast<const AbstractCounter &>(Other).Count == Count;
}

std::string AbstractCounter::toString() const {
  return "counter{" + std::to_string(Count) + "}";
}

//===----------------------------------------------------------------------===//
// AbstractRegister
//===----------------------------------------------------------------------===//

std::unique_ptr<AbstractObject> AbstractRegister::clone() const {
  auto Copy = std::make_unique<AbstractRegister>();
  Copy->Cell = Cell;
  return Copy;
}

bool AbstractRegister::apply(const Action &A) {
  Symbol M = A.method();
  if (M == symbol("write")) {
    if (A.args().size() != 1 || A.rets().size() != 1)
      return false;
    if (A.rets()[0] != Cell)
      return false;
    Cell = A.args()[0];
    return true;
  }
  if (M == symbol("read"))
    return A.rets().size() == 1 && A.rets()[0] == Cell;
  return false;
}

bool AbstractRegister::equals(const AbstractObject &Other) const {
  if (Other.kind() != kind())
    return false;
  return static_cast<const AbstractRegister &>(Other).Cell == Cell;
}

std::string AbstractRegister::toString() const {
  return "register{" + Cell.toString() + "}";
}

//===----------------------------------------------------------------------===//
// AbstractQueue
//===----------------------------------------------------------------------===//

std::unique_ptr<AbstractObject> AbstractQueue::clone() const {
  auto Copy = std::make_unique<AbstractQueue>();
  Copy->Items = Items;
  return Copy;
}

bool AbstractQueue::apply(const Action &A) {
  Symbol M = A.method();
  if (M == symbol("enq")) {
    if (A.args().size() != 1 || A.rets().size() != 1)
      return false;
    if (A.rets()[0] != Value::boolean(Items.empty()))
      return false;
    Items.push_back(A.args()[0]);
    return true;
  }
  if (M == symbol("deq") || M == symbol("peek")) {
    if (!A.args().empty() || A.rets().size() != 2)
      return false;
    Value Front = Items.empty() ? Value::nil() : Items.front();
    if (A.rets()[0] != Front ||
        A.rets()[1] != Value::boolean(!Items.empty()))
      return false;
    if (M == symbol("deq") && !Items.empty())
      Items.erase(Items.begin());
    return true;
  }
  return false;
}

bool AbstractQueue::equals(const AbstractObject &Other) const {
  if (Other.kind() != kind())
    return false;
  return static_cast<const AbstractQueue &>(Other).Items == Items;
}

std::string AbstractQueue::toString() const {
  std::ostringstream OS;
  OS << "queue[";
  for (size_t I = 0; I != Items.size(); ++I) {
    if (I)
      OS << ", ";
    OS << Items[I];
  }
  OS << ']';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// AbstractHeap
//===----------------------------------------------------------------------===//

AbstractHeap::AbstractHeap()
    : MakeObject([](ObjectId) { return std::make_unique<AbstractDictionary>(); }) {}

AbstractHeap::AbstractHeap(Factory MakeObject)
    : MakeObject(std::move(MakeObject)) {}

AbstractHeap::AbstractHeap(const AbstractHeap &Other)
    : MakeObject(Other.MakeObject) {
  for (const auto &[Obj, State] : Other.Objects)
    Objects.emplace(Obj, State->clone());
}

AbstractHeap &AbstractHeap::operator=(const AbstractHeap &Other) {
  if (this == &Other)
    return *this;
  MakeObject = Other.MakeObject;
  Objects.clear();
  for (const auto &[Obj, State] : Other.Objects)
    Objects.emplace(Obj, State->clone());
  return *this;
}

bool AbstractHeap::apply(const Action &A) {
  auto It = Objects.find(A.object());
  if (It == Objects.end())
    It = Objects.emplace(A.object(), MakeObject(A.object())).first;
  return It->second->apply(A);
}

bool AbstractHeap::equals(const AbstractHeap &Other) const {
  // Objects never touched are in their initial state; materialize missing
  // entries as freshly created objects for comparison.
  for (const auto &[Obj, State] : Objects) {
    auto It = Other.Objects.find(Obj);
    if (It == Other.Objects.end()) {
      if (!State->equals(*Other.MakeObject(Obj)))
        return false;
      continue;
    }
    if (!State->equals(*It->second))
      return false;
  }
  for (const auto &[Obj, State] : Other.Objects)
    if (!Objects.count(Obj) && !State->equals(*MakeObject(Obj)))
      return false;
  return true;
}

std::string AbstractHeap::toString() const {
  std::ostringstream OS;
  for (const auto &[Obj, State] : Objects)
    OS << 'o' << Obj.index() << " = " << State->toString() << '\n';
  return OS.str();
}
