//===- replay/AbstractState.h - Abstract object semantics (Fig 5) -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable abstract semantics of shared objects (paper §3.1, Fig 5):
/// every action a denotes a partial map ⟦a⟧ on abstract states — partial
/// because the recorded return values constrain the states the action can
/// fire in (e.g. ⟦o.size()/n⟧ is the identity on dictionaries of size n and
/// undefined otherwise). Replaying a trace under these semantics checks
/// feasibility and computes the end state — the ingredients of the
/// Theorem 5.2 determinism checker.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_REPLAY_ABSTRACTSTATE_H
#define CRD_REPLAY_ABSTRACTSTATE_H

#include "trace/Action.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace crd {

/// Abstract state of one shared object, with Fig 5-style partial action
/// semantics.
class AbstractObject {
public:
  /// LLVM-style kind discriminator (the project avoids RTTI).
  enum class Kind { Dictionary, Set, Counter, Register, Queue };

  virtual ~AbstractObject();

  /// Dynamic kind of this object state.
  virtual Kind kind() const = 0;

  /// Deep copy.
  virtual std::unique_ptr<AbstractObject> clone() const = 0;

  /// Applies \p A: returns true and transitions when ⟦A⟧ is defined in the
  /// current state (i.e. the recorded return values match); returns false
  /// and leaves the state unchanged otherwise.
  virtual bool apply(const Action &A) = 0;

  /// Structural state equality (same dynamic type and same contents).
  virtual bool equals(const AbstractObject &Other) const = 0;

  /// Deterministic rendering, usable as a state fingerprint.
  virtual std::string toString() const = 0;
};

/// Fig 5 dictionary: d : K -> V ∪ {nil}, with
///   put(k,v)/p  defined iff p = d(k); d' = d[k -> v]
///   get(k)/v    defined iff v = d(k)
///   size()/r    defined iff r = |{k : d(k) != nil}|
class AbstractDictionary : public AbstractObject {
public:
  Kind kind() const override { return Kind::Dictionary; }
  std::unique_ptr<AbstractObject> clone() const override;
  bool apply(const Action &A) override;
  bool equals(const AbstractObject &Other) const override;
  std::string toString() const override;

private:
  std::map<Value, Value> Entries; // Only non-nil values are stored.
};

/// Set with add(k)/changed, remove(k)/changed, contains(k)/present,
/// size()/n (the shadow-return style of setSpec()).
class AbstractSet : public AbstractObject {
public:
  Kind kind() const override { return Kind::Set; }
  std::unique_ptr<AbstractObject> clone() const override;
  bool apply(const Action &A) override;
  bool equals(const AbstractObject &Other) const override;
  std::string toString() const override;

private:
  std::map<Value, bool> Members; // Present keys map to true.
};

/// Counter with inc(), dec() and read()/v.
class AbstractCounter : public AbstractObject {
public:
  Kind kind() const override { return Kind::Counter; }
  std::unique_ptr<AbstractObject> clone() const override;
  bool apply(const Action &A) override;
  bool equals(const AbstractObject &Other) const override;
  std::string toString() const override;

private:
  int64_t Count = 0;
};

/// Single cell with write(v)/prev and read()/v; initially nil.
class AbstractRegister : public AbstractObject {
public:
  Kind kind() const override { return Kind::Register; }
  std::unique_ptr<AbstractObject> clone() const override;
  bool apply(const Action &A) override;
  bool equals(const AbstractObject &Other) const override;
  std::string toString() const override;

private:
  Value Cell;
};

/// FIFO queue with enq(v)/wasEmpty, deq()/v/ok and peek()/v/ok (ok=false
/// and v=nil on an empty queue).
class AbstractQueue : public AbstractObject {
public:
  Kind kind() const override { return Kind::Queue; }
  std::unique_ptr<AbstractObject> clone() const override;
  bool apply(const Action &A) override;
  bool equals(const AbstractObject &Other) const override;
  std::string toString() const override;

private:
  std::vector<Value> Items; ///< Front at index 0.
};

/// The shared state H: abstract states of all objects, created on demand
/// by a per-object factory (defaulting to AbstractDictionary).
class AbstractHeap {
public:
  using Factory = std::function<std::unique_ptr<AbstractObject>(ObjectId)>;

  AbstractHeap();
  explicit AbstractHeap(Factory MakeObject);
  AbstractHeap(const AbstractHeap &Other);
  AbstractHeap &operator=(const AbstractHeap &Other);
  AbstractHeap(AbstractHeap &&) = default;
  AbstractHeap &operator=(AbstractHeap &&) = default;

  /// Applies the action to its object's state; false when infeasible.
  bool apply(const Action &A);

  bool equals(const AbstractHeap &Other) const;

  /// Deterministic rendering of every object state.
  std::string toString() const;

  size_t numObjects() const { return Objects.size(); }

private:
  Factory MakeObject;
  std::map<ObjectId, std::unique_ptr<AbstractObject>> Objects;
};

} // namespace crd

#endif // CRD_REPLAY_ABSTRACTSTATE_H
