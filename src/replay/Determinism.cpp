//===- replay/Determinism.cpp - Theorem 5.2 checker ---------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "replay/Determinism.h"

#include <sstream>

using namespace crd;

ReplayResult crd::replayTrace(const Trace &T, const AbstractHeap &Initial) {
  ReplayResult Result;
  Result.Final = Initial;
  for (size_t I = 0, E = T.size(); I != E; ++I) {
    const Event &Ev = T[I];
    if (!Ev.isInvoke())
      continue;
    if (!Result.Final.apply(Ev.action())) {
      Result.Feasible = false;
      Result.FailedAt = I;
      return Result;
    }
  }
  Result.Feasible = true;
  return Result;
}

DeterminismReport crd::checkDeterminism(const Trace &T,
                                        const AbstractHeap &Initial,
                                        size_t EnumerationLimit,
                                        size_t Samples, uint64_t Seed) {
  DeterminismReport Report;

  ReplayResult Reference = replayTrace(T, Initial);
  if (!Reference.Feasible) {
    // The observed trace itself is inconsistent with the abstract
    // semantics — nothing sensible to compare against.
    Report.LinearizationsChecked = 1;
    Report.Infeasible = 1;
    Report.Witness = "the original trace is infeasible at event " +
                     std::to_string(Reference.FailedAt) + ": " +
                     T[Reference.FailedAt].toString();
    return Report;
  }

  HappensBeforeDag Dag(T);

  std::vector<std::vector<uint32_t>> Orders;
  Report.Exhaustive = Dag.enumerateLinearizations(EnumerationLimit, Orders);
  if (!Report.Exhaustive) {
    Orders.clear();
    for (size_t S = 0; S != Samples; ++S)
      Orders.push_back(Dag.randomLinearization(Seed + S));
  }

  for (const std::vector<uint32_t> &Order : Orders) {
    ++Report.LinearizationsChecked;
    Trace Permuted = permuteTrace(T, Order);
    ReplayResult R = replayTrace(Permuted, Initial);
    if (!R.Feasible) {
      ++Report.Infeasible;
      if (Report.Witness.empty()) {
        std::ostringstream OS;
        OS << "linearization infeasible at "
           << Permuted[R.FailedAt].toString()
           << " (the recorded return values cannot occur in this order)";
        Report.Witness = OS.str();
      }
      continue;
    }
    if (!R.Final.equals(Reference.Final)) {
      ++Report.Divergent;
      if (Report.Witness.empty()) {
        std::ostringstream OS;
        OS << "linearization ends in a different state:\n-- reference --\n"
           << Reference.Final.toString() << "-- divergent --\n"
           << R.Final.toString();
        Report.Witness = OS.str();
      }
    }
  }
  return Report;
}
