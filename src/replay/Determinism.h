//===- replay/Determinism.h - Theorem 5.2 checker ---------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable check of paper Theorem 5.2: if a trace π has no
/// commutativity races w.r.t. its happens-before relation � and a sound
/// specification, then every trace admitting � and starting in the same
/// state (a) is feasible and (b) ends in the same state as π. The checker
/// enumerates (or samples) HB-respecting linearizations, replays each
/// under the abstract semantics, and compares outcomes.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_REPLAY_DETERMINISM_H
#define CRD_REPLAY_DETERMINISM_H

#include "replay/AbstractState.h"
#include "replay/Linearize.h"

#include <optional>
#include <string>

namespace crd {

/// Result of replaying one trace under the abstract semantics.
struct ReplayResult {
  bool Feasible = false;
  /// Index of the first infeasible event (when !Feasible).
  size_t FailedAt = 0;
  /// Final heap (meaningful when Feasible).
  AbstractHeap Final;
};

/// Replays the action events of \p T from the initial heap \p Initial.
ReplayResult replayTrace(const Trace &T, const AbstractHeap &Initial);

/// Outcome of the Theorem 5.2 check over many linearizations.
struct DeterminismReport {
  size_t LinearizationsChecked = 0;
  size_t Infeasible = 0; ///< Linearizations whose returns became inconsistent.
  size_t Divergent = 0;  ///< Feasible but ending in a different state.
  bool Exhaustive = false; ///< All linearizations were enumerated.

  /// Theorem 5.2's conclusion holds on the checked sample.
  bool deterministic() const { return Infeasible == 0 && Divergent == 0; }

  /// Rendering of one witness divergence (empty when deterministic).
  std::string Witness;
};

/// Checks determinism of \p T: enumerates all linearizations when there
/// are at most \p EnumerationLimit, otherwise samples \p Samples random
/// ones. The original order is always included and must be feasible
/// (checked by assertion in debug builds; reported as infeasible
/// otherwise).
DeterminismReport checkDeterminism(const Trace &T,
                                   const AbstractHeap &Initial = AbstractHeap(),
                                   size_t EnumerationLimit = 2000,
                                   size_t Samples = 200, uint64_t Seed = 1);

} // namespace crd

#endif // CRD_REPLAY_DETERMINISM_H
