//===- replay/Linearize.cpp - HB-respecting linearizations --------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "replay/Linearize.h"

#include <cassert>
#include <random>
#include <unordered_map>

using namespace crd;

HappensBeforeDag::HappensBeforeDag(const Trace &T) {
  size_t N = T.size();
  Predecessors.assign(N, {});

  std::unordered_map<uint32_t, uint32_t> LastOfThread;
  std::unordered_map<uint32_t, uint32_t> LastReleaseOfLock;
  std::unordered_map<uint32_t, uint32_t> ForkEventOfThread;
  std::unordered_map<uint32_t, uint32_t> LastEventOfThreadEver;

  for (uint32_t I = 0; I != N; ++I) {
    const Event &E = T[I];
    uint32_t Tid = E.thread().index();

    // Program order, or the fork event for a thread's first event.
    if (auto It = LastOfThread.find(Tid); It != LastOfThread.end())
      Predecessors[I].push_back(It->second);
    else if (auto F = ForkEventOfThread.find(Tid); F != ForkEventOfThread.end())
      Predecessors[I].push_back(F->second);
    LastOfThread[Tid] = I;
    LastEventOfThreadEver[Tid] = I;

    switch (E.kind()) {
    case EventKind::Fork:
      ForkEventOfThread[E.other().index()] = I;
      break;
    case EventKind::Join:
      if (auto It = LastEventOfThreadEver.find(E.other().index());
          It != LastEventOfThreadEver.end())
        Predecessors[I].push_back(It->second);
      break;
    case EventKind::Acquire:
      if (auto It = LastReleaseOfLock.find(E.lock().index());
          It != LastReleaseOfLock.end())
        Predecessors[I].push_back(It->second);
      break;
    case EventKind::Release:
      LastReleaseOfLock[E.lock().index()] = I;
      break;
    default:
      break;
    }
  }
}

namespace {

/// Shared state for the recursive enumeration.
struct Enumerator {
  const HappensBeforeDag &Dag;
  size_t Limit;
  std::vector<std::vector<uint32_t>> &Out;
  std::vector<uint32_t> Current;
  std::vector<uint32_t> MissingPreds; // Per event, unplaced predecessors.

  bool run() {
    size_t N = Dag.size();
    Current.reserve(N);
    MissingPreds.resize(N);
    for (size_t I = 0; I != N; ++I)
      MissingPreds[I] = static_cast<uint32_t>(Dag.predecessorsOf(I).size());
    return recurse();
  }

  /// Returns false when the output limit was hit (enumeration truncated).
  bool recurse() {
    size_t N = Dag.size();
    if (Current.size() == N) {
      Out.push_back(Current);
      return Out.size() < Limit;
    }
    // Ready events: all predecessors placed and not yet placed themselves.
    // Placement is tracked by MissingPreds == UINT32_MAX.
    for (uint32_t I = 0; I != N; ++I) {
      if (MissingPreds[I] != 0)
        continue;
      place(I);
      bool KeepGoing = recurse();
      unplace(I);
      if (!KeepGoing)
        return false;
    }
    return true;
  }

  void place(uint32_t I) {
    Current.push_back(I);
    MissingPreds[I] = UINT32_MAX;
    for (uint32_t J = 0, N = static_cast<uint32_t>(Dag.size()); J != N; ++J)
      for (uint32_t P : Dag.predecessorsOf(J))
        if (P == I)
          --MissingPreds[J];
  }

  void unplace(uint32_t I) {
    Current.pop_back();
    MissingPreds[I] = 0;
    for (uint32_t J = 0, N = static_cast<uint32_t>(Dag.size()); J != N; ++J)
      for (uint32_t P : Dag.predecessorsOf(J))
        if (P == I)
          ++MissingPreds[J];
  }
};

} // namespace

bool HappensBeforeDag::enumerateLinearizations(
    size_t Limit, std::vector<std::vector<uint32_t>> &Out) const {
  Out.clear();
  if (Predecessors.empty()) {
    Out.push_back({});
    return true;
  }
  Enumerator E{*this, Limit, Out, {}, {}};
  return E.run();
}

std::vector<uint32_t> HappensBeforeDag::randomLinearization(uint64_t Seed) const {
  size_t N = Predecessors.size();
  std::mt19937_64 Rng(Seed);

  std::vector<uint32_t> Missing(N);
  std::vector<std::vector<uint32_t>> Successors(N);
  for (uint32_t I = 0; I != N; ++I) {
    Missing[I] = static_cast<uint32_t>(Predecessors[I].size());
    for (uint32_t P : Predecessors[I])
      Successors[P].push_back(I);
  }

  std::vector<uint32_t> Ready;
  for (uint32_t I = 0; I != N; ++I)
    if (Missing[I] == 0)
      Ready.push_back(I);

  std::vector<uint32_t> Order;
  Order.reserve(N);
  while (!Ready.empty()) {
    size_t Pick = Rng() % Ready.size();
    uint32_t I = Ready[Pick];
    Ready[Pick] = Ready.back();
    Ready.pop_back();
    Order.push_back(I);
    for (uint32_t S : Successors[I])
      if (--Missing[S] == 0)
        Ready.push_back(S);
  }
  assert(Order.size() == N && "happens-before graph has a cycle");
  return Order;
}

Trace crd::permuteTrace(const Trace &T, const std::vector<uint32_t> &Order) {
  assert(Order.size() == T.size() && "order must cover every event");
  std::vector<Event> Events;
  Events.reserve(Order.size());
  for (uint32_t I : Order)
    Events.push_back(T[I]);
  return Trace(std::move(Events));
}
