//===- replay/Linearize.h - HB-respecting linearizations --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumeration and sampling of the traces that "admit" a given
/// happens-before relation (paper Theorem 5.2): permutations of the
/// original events that are topological orders of the happens-before DAG
/// (program order + fork/join edges + per-lock release→acquire edges).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_REPLAY_LINEARIZE_H
#define CRD_REPLAY_LINEARIZE_H

#include "trace/Trace.h"

#include <cstdint>
#include <vector>

namespace crd {

/// The happens-before dependency DAG of a trace, as direct-predecessor
/// lists over event indices.
class HappensBeforeDag {
public:
  explicit HappensBeforeDag(const Trace &T);

  size_t size() const { return Predecessors.size(); }
  const std::vector<uint32_t> &predecessorsOf(size_t Event) const {
    return Predecessors[Event];
  }

  /// All topological orders (as index sequences), up to \p Limit. Returns
  /// whether enumeration was exhaustive (false when truncated at Limit).
  bool enumerateLinearizations(size_t Limit,
                               std::vector<std::vector<uint32_t>> &Out) const;

  /// One random topological order, uniformly chosen among the ready events
  /// at each step (not uniform over all orders, but covers the space).
  std::vector<uint32_t> randomLinearization(uint64_t Seed) const;

private:
  std::vector<std::vector<uint32_t>> Predecessors;
};

/// Rebuilds a trace from \p T's events in the order given by \p Order.
Trace permuteTrace(const Trace &T, const std::vector<uint32_t> &Order);

} // namespace crd

#endif // CRD_REPLAY_LINEARIZE_H
