//===- ingest/RecorderSink.h - SimRuntime → live ingestion ------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the simulated runtime onto the live ingestion path: a
/// LiveRecorderSink demultiplexes the SimRuntime event stream by thread
/// id into per-thread Recorders, so every existing workload exercises
/// the ring/collector/merge machinery end to end. SimRuntime emits all
/// events from one scheduler thread, which satisfies each ring's
/// single-producer contract (one producer thread may own many rings).
///
/// The runtime's onThreadExit() notification closes that thread's ring
/// mid-stream — the teardown path real producers take — instead of
/// everything closing in a burst at the end.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_INGEST_RECORDERSINK_H
#define CRD_INGEST_RECORDERSINK_H

#include "ingest/Session.h"
#include "runtime/Sink.h"

#include <vector>

namespace crd {
namespace ingest {

/// EventSink that routes each event to its thread's Recorder, attaching
/// producers lazily on first sight of a thread id.
class LiveRecorderSink : public EventSink {
public:
  explicit LiveRecorderSink(Session &S) : TheSession(S) {}

  void onEvent(const Event &E) override {
    recorderFor(E.thread()).record(E);
  }

  /// Ends the exiting thread's stream; its ring's tail is still drained
  /// by the collector (close ≠ discard).
  void onThreadExit(ThreadId T) override {
    uint32_t I = T.index();
    if (I < ByThread.size() && ByThread[I].attached())
      ByThread[I].finish();
  }

  /// Closes any still-open producers (threads alive at end of run).
  void finishAll() {
    for (Recorder &R : ByThread)
      R.finish();
  }

private:
  Recorder &recorderFor(ThreadId T) {
    uint32_t I = T.index();
    if (I >= ByThread.size())
      ByThread.resize(I + 1);
    if (!ByThread[I].attached())
      ByThread[I] = TheSession.attach(T);
    return ByThread[I];
  }

  Session &TheSession;
  std::vector<Recorder> ByThread;
};

} // namespace ingest
} // namespace crd

#endif // CRD_INGEST_RECORDERSINK_H
