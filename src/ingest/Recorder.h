//===- ingest/Recorder.h - Per-thread event recording handle ----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The producer side of live ingestion. Each real thread obtains a
/// Recorder from a Session and logs events through it; the handle fronts
/// a bounded SPSC ring owned by the session, so the record fast path is
/// one ring slot write plus one release store — no locks, no shared
/// writes with any other producer. Recording is commutative by
/// construction: producers touch only their own ring, which is what
/// keeps the tracer from perturbing the interleavings it observes.
///
/// Backpressure is a per-session policy (docs/ingestion.md):
///   Block      — record() waits for the collector; no event is ever lost.
///   DropNewest — record() discards the new event when the ring is full
///                and counts it in the producer's drop counter.
/// A third knob, per-producer ring capacity at registration time, lives
/// on Session::attach() (rings cannot grow once live).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_INGEST_RECORDER_H
#define CRD_INGEST_RECORDER_H

#include "support/Metrics.h"
#include "support/SpscRing.h"
#include "trace/Event.h"

#include <cstdint>

namespace crd {
namespace ingest {

/// What record() does when the producer outruns the collector.
enum class BackpressurePolicy {
  Block,      ///< Wait for ring space; zero loss, producer latency unbounded.
  DropNewest, ///< Discard the new event; loss bounded and counted.
};

/// One registered producer's state inside a Session: the SPSC ring plus
/// the per-producer tallies. Addresses are stable for the session's
/// lifetime (the registry is a deque), so Recorder handles and the
/// collector both hold plain pointers.
class ProducerChannel {
public:
  ProducerChannel(ThreadId Tid, size_t CapacityPow2, BackpressurePolicy Policy)
      : Ring(CapacityPow2), Tid(Tid), Policy(Policy) {}

  ProducerChannel(const ProducerChannel &) = delete;
  ProducerChannel &operator=(const ProducerChannel &) = delete;

private:
  friend class Recorder;
  friend class Session;

  SpscRing<Event> Ring;
  ThreadId Tid;
  BackpressurePolicy Policy;

  /// Producer-side tallies. Plain (non-atomic) on purpose: only the owning
  /// producer writes them, and readers look only after the ring is closed —
  /// the release RMW close() does on the tail word, paired with the
  /// collector's acquire tail load, carries them across threads. Recorded
  /// doubles as the producer's sequence number: the Nth event accepted
  /// into the ring has sequence N.
  uint64_t Recorded = 0;
  uint64_t Dropped = 0;

  /// Collector-side tallies (single writer: whichever thread drains —
  /// the collector thread or a manual drainRound() caller).
  uint64_t Drained = 0;
  uint64_t Drains = 0;
  /// Ring depth observed at each collector visit (inert when
  /// CRD_METRICS=0).
  metrics::Pow2Histogram<18> DepthOnDrain;
};

/// Movable per-thread recording handle. Obtain from Session::attach(),
/// hand to the producer thread, record events, then finish() (or let the
/// destructor do it) when the thread's stream ends. After finish() the
/// handle is detached and must not record; the events already in the
/// ring are preserved — close() only marks end-of-stream, the collector
/// still drains the tail, so a thread exiting mid-stream loses nothing.
class Recorder {
public:
  /// Detached handle; attach by move-assigning from Session::attach().
  Recorder() = default;

  Recorder(Recorder &&O) noexcept : Chan(O.Chan) { O.Chan = nullptr; }
  Recorder &operator=(Recorder &&O) noexcept {
    if (this != &O) {
      finish();
      Chan = O.Chan;
      O.Chan = nullptr;
    }
    return *this;
  }
  Recorder(const Recorder &) = delete;
  Recorder &operator=(const Recorder &) = delete;

  ~Recorder() { finish(); }

  bool attached() const { return Chan != nullptr; }

  /// The thread id this producer records as.
  ThreadId thread() const { return Chan->Tid; }

  /// Logs one event. Returns false iff the event was dropped (DropNewest
  /// policy, ring full). Under Block policy this waits for the collector
  /// when the ring is full — a session that was never start()ed (and is
  /// not being pumped manually) will block forever; that is the policy's
  /// contract, not a bug.
  bool record(Event E) {
    ProducerChannel &C = *Chan;
    if (C.Policy == BackpressurePolicy::Block) {
      C.Ring.push(std::move(E));
      ++C.Recorded;
      return true;
    }
    if (C.Ring.tryPush(std::move(E))) {
      ++C.Recorded;
      return true;
    }
    ++C.Dropped;
    return false;
  }

  /// Convenience emitters mirroring the Event factories, stamped with
  /// this producer's thread id.
  bool invoke(Action A) { return record(Event::invoke(thread(), std::move(A))); }
  bool fork(ThreadId Child) { return record(Event::fork(thread(), Child)); }
  bool join(ThreadId Child) { return record(Event::join(thread(), Child)); }
  bool acquire(LockId L) { return record(Event::acquire(thread(), L)); }
  bool release(LockId L) { return record(Event::release(thread(), L)); }
  bool read(VarId V) { return record(Event::read(thread(), V)); }
  bool write(VarId V) { return record(Event::write(thread(), V)); }
  bool txBegin() { return record(Event::txBegin(thread())); }
  bool txEnd() { return record(Event::txEnd(thread())); }

  /// Ends this producer's stream: closes the ring (the collector drains
  /// the remaining tail, then sees end-of-stream) and detaches the
  /// handle. Idempotent; also run by the destructor.
  void finish() {
    if (Chan) {
      Chan->Ring.close();
      Chan = nullptr;
    }
  }

private:
  friend class Session;
  explicit Recorder(ProducerChannel *C) : Chan(C) {}

  ProducerChannel *Chan = nullptr;
};

} // namespace ingest
} // namespace crd

#endif // CRD_INGEST_RECORDER_H
