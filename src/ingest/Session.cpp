//===- ingest/Session.cpp - Live multi-producer ingestion --------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "ingest/Session.h"

#include <algorithm>
#include <chrono>
#include <ostream>

using namespace crd;
using namespace crd::ingest;

namespace {

/// Smallest power of two ≥ \p N (≥ 1); ring capacities are quietly
/// rounded up rather than rejected.
size_t roundUpPow2(size_t N) {
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

/// How many events tryPopN moves per call; bounds the scratch buffer,
/// not the per-round quota (the drain loop repeats until the quota or
/// the ring is exhausted).
constexpr size_t DrainChunk = 256;

const char *policyName(BackpressurePolicy P) {
  return P == BackpressurePolicy::Block ? "block" : "drop_newest";
}

} // namespace

Session::Session(SessionOptions Opts) : Opts(Opts) {
  this->Opts.RingCapacity = roundUpPow2(std::max<size_t>(1, Opts.RingCapacity));
  this->Opts.BatchCapacity = std::max<size_t>(1, Opts.BatchCapacity);
  Scratch.resize(DrainChunk);
}

Session::~Session() { stop(); }

Recorder Session::attachLocked(ThreadId Tid, size_t Capacity) {
  Channels.emplace_back(Tid, Capacity, Opts.Policy);
  Ptrs.push_back(&Channels.back());
  return Recorder(Ptrs.back());
}

Recorder Session::attach() {
  std::lock_guard<std::mutex> L(RegMutex);
  return attachLocked(ThreadId(NextTid++), Opts.RingCapacity);
}

Recorder Session::attach(ThreadId Tid, size_t RingCapacityOverride) {
  std::lock_guard<std::mutex> L(RegMutex);
  NextTid = std::max(NextTid, Tid.index() + 1);
  size_t Cap = RingCapacityOverride == 0 ? Opts.RingCapacity
                                         : roundUpPow2(RingCapacityOverride);
  return attachLocked(Tid, Cap);
}

size_t Session::producerCount() const {
  std::lock_guard<std::mutex> L(RegMutex);
  return Ptrs.size();
}

void Session::flushBatch() {
  Batch.finalizeSyncIndex();
  Pipeline->processBatch(Batch);
  ++Batches;
}

void Session::deliver(const Event &E) {
  if (Writer)
    Writer->append(E);
  if (Pipeline) {
    Batch.append(E);
    if (Batch.size() >= Opts.BatchCapacity)
      flushBatch();
  }
  ++Collected;
}

size_t Session::drainRound() {
  uint64_t T0 = metrics::nowNs();
  {
    std::lock_guard<std::mutex> L(RegMutex);
    RoundPtrs = Ptrs;
  }
  size_t Total = 0;
  for (ProducerChannel *C : RoundPtrs) {
    C->DepthOnDrain.record(C->Ring.approxSize());
    ++C->Drains;
    size_t Quota = Opts.DrainQuota ? Opts.DrainQuota : C->Ring.capacity();
    while (Quota != 0) {
      size_t Want = std::min(Quota, Scratch.size());
      size_t N = C->Ring.tryPopN(Scratch.data(), Want);
      if (N == 0)
        break;
      for (size_t I = 0; I != N; ++I)
        deliver(Scratch[I]);
      C->Drained += N;
      Total += N;
      Quota -= N;
    }
  }
  // Flush the partial batch every round so live detection never sits on
  // events through a lull; recycled batches make the refill free.
  if (Pipeline && !Batch.empty())
    flushBatch();
  ++Rounds;
  if (Total == 0)
    ++EmptyRounds;
  if (metrics::Enabled) {
    uint64_t T1 = metrics::nowNs();
    RoundNs.record(T1 - T0);
    CollectNs += T1 - T0;
    if (Opts.TraceRounds && Total != 0 && Spans.size() < SpanCapacity)
      Spans.push_back({T0, T1, Total});
  }
  return Total;
}

bool Session::allDrained() const {
  std::lock_guard<std::mutex> L(RegMutex);
  for (const ProducerChannel *C : Ptrs)
    if (!C->Ring.closed() || C->Ring.approxSize() != 0)
      return false;
  return true;
}

void Session::collectorMain() {
  unsigned Idle = 0;
  for (;;) {
    if (drainRound() != 0) {
      Idle = 0;
      continue;
    }
    if (StopRequested.load(std::memory_order_acquire) && allDrained())
      break;
    // Idle backoff: yield first, then exponentially longer short sleeps
    // capped at ~1ms. No producer-side doorbell — producers never write
    // shared state, so the collector polls; the cap bounds both wake-up
    // latency and idle CPU burn.
    if (Idle < 8) {
      std::this_thread::yield();
    } else {
      unsigned Shift = std::min(Idle - 8, 10u);
      std::this_thread::sleep_for(std::chrono::microseconds(1u << Shift));
    }
    ++Idle;
  }
}

void Session::start() {
  if (Started)
    return;
  StopRequested.store(false, std::memory_order_relaxed);
  Collector = std::thread([this] { collectorMain(); });
  Started = true;
}

void Session::stop() {
  if (!Started)
    return;
  StopRequested.store(true, std::memory_order_release);
  Collector.join();
  Started = false;
}

void Session::drainAll() {
  while (!allDrained())
    drainRound();
}

IngestMetrics Session::metricsSnapshot() const {
  IngestMetrics M;
  M.EventsCollected = Collected;
  M.Rounds = Rounds;
  M.EmptyRounds = EmptyRounds;
  M.Batches = Batches;
  M.CollectNs = CollectNs;
  M.RoundNsPow2 = RoundNs.counts();
  M.RoundNsMax = RoundNs.max();
  M.Spans = Spans;
  std::lock_guard<std::mutex> L(RegMutex);
  M.Producers = Ptrs.size();
  M.PerProducer.reserve(Ptrs.size());
  for (const ProducerChannel *C : Ptrs) {
    ProducerMetricsSnapshot P;
    P.Thread = C->Tid.index();
    P.Recorded = C->Recorded;
    P.Dropped = C->Dropped;
    P.Drained = C->Drained;
    P.Drains = C->Drains;
    P.RingCapacity = C->Ring.capacity();
    P.DepthPow2 = C->DepthOnDrain.counts();
    P.DepthMax = C->DepthOnDrain.max();
    M.DropsTotal += P.Dropped;
    M.PerProducer.push_back(std::move(P));
  }
  return M;
}

void Session::writeMetricsJson(std::ostream &OS) const {
  IngestMetrics M = metricsSnapshot();
  metrics::JsonWriter W(OS);
  W.beginObject();
  W.field("metrics_enabled", metrics::Enabled);
  W.field("policy", policyName(Opts.Policy));
  W.field("ring_capacity", static_cast<uint64_t>(Opts.RingCapacity));
  W.field("batch_capacity", static_cast<uint64_t>(Opts.BatchCapacity));
  W.field("producers", M.Producers);
  W.field("events_collected", M.EventsCollected);
  W.field("drops", M.DropsTotal);
  W.field("rounds", M.Rounds);
  W.field("empty_rounds", M.EmptyRounds);
  W.field("batches", M.Batches);
  W.field("collect_ns", M.CollectNs);
  W.fieldArray("round_ns_pow2", M.RoundNsPow2);
  W.field("round_ns_max", M.RoundNsMax);
  W.field("round_spans", static_cast<uint64_t>(M.Spans.size()));
  W.key("per_producer");
  W.beginArray();
  for (const ProducerMetricsSnapshot &P : M.PerProducer) {
    W.beginObject();
    W.field("thread", static_cast<uint64_t>(P.Thread));
    W.field("recorded", P.Recorded);
    W.field("dropped", P.Dropped);
    W.field("drained", P.Drained);
    W.field("drains", P.Drains);
    W.field("producer_ring_capacity", P.RingCapacity);
    W.fieldArray("depth_pow2", P.DepthPow2);
    W.field("depth_max", P.DepthMax);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}

void crd::ingest::writeIngestChromeTrace(std::ostream &OS,
                                         const IngestMetrics &M) {
  metrics::JsonWriter W(OS);
  uint64_t Base = ~uint64_t(0);
  for (const RoundSpan &S : M.Spans)
    Base = std::min(Base, S.BeginNs);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  if (!M.Spans.empty()) {
    W.beginObject();
    W.field("name", "thread_name");
    W.field("ph", "M");
    W.field("pid", uint64_t(0));
    W.field("tid", uint64_t(0));
    W.key("args");
    W.beginObject();
    W.field("name", "ingest collector");
    W.endObject();
    W.endObject();
  }
  for (const RoundSpan &S : M.Spans) {
    W.beginObject();
    W.field("name", "round (" + std::to_string(S.Events) + " ev)");
    W.field("ph", "X");
    W.field("pid", uint64_t(0));
    W.field("tid", uint64_t(0));
    W.field("ts", static_cast<double>(S.BeginNs - Base) / 1000.0);
    W.field("dur", static_cast<double>(S.EndNs - S.BeginNs) / 1000.0);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}
