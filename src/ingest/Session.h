//===- ingest/Session.h - Live multi-producer ingestion ---------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live recording front-end: real threads log events into per-thread
/// SPSC rings (Recorder.h) and a collector drains all rings in rounds,
/// sequencing the streams into one deterministic total order that feeds
/// the existing StreamPipeline (live detection) and/or a WireWriter
/// (record now, analyze later). When both sinks are set they see the
/// identical order, which is the determinism contract the ingestion
/// tests pin down: replaying the wire file yields bit-identical races to
/// what the live pipeline reported.
///
/// Ordering. The merged order is defined by (round, registration order,
/// per-producer FIFO): each collector round visits producers in
/// registration order and appends whatever their rings hold (bounded by
/// the drain quota). Per-producer order is always preserved — producer
/// sequence numbers are exactly the Recorded tallies. The cross-producer
/// interleaving depends on collector timing, so two *live runs* may
/// merge differently (each is one valid observed interleaving, like two
/// runs of a real program); what is deterministic is that the analyzed
/// order and the recorded order of one run are the same sequence.
///
/// Threading. attach() may be called from any thread at any time
/// (registration takes a mutex; the record fast path never does). The
/// collector is either the dedicated thread started by start()/stop()
/// or the caller of drainRound()/drainAll() — never both at once.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_INGEST_SESSION_H
#define CRD_INGEST_SESSION_H

#include "ingest/Recorder.h"
#include "wire/StreamPipeline.h"
#include "wire/WireWriter.h"

#include <array>
#include <atomic>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <thread>
#include <vector>

namespace crd {
namespace ingest {

/// Session-wide ingestion knobs.
struct SessionOptions {
  /// Default per-producer ring capacity in events; must be a power of
  /// two. attach() can override per producer (the Resize-at-registration
  /// knob).
  size_t RingCapacity = 1024;
  BackpressurePolicy Policy = BackpressurePolicy::Block;
  /// Max events drained from one producer per round, so a hot producer
  /// cannot starve the rotation. 0 = that producer's ring capacity.
  size_t DrainQuota = 0;
  /// Events per EventBatch handed to the pipeline (the pipeline sink
  /// batches; the wire sink writes event-at-a-time into its own chunks).
  size_t BatchCapacity = 4096;
  /// Record a RoundSpan per non-empty collector round for Chrome tracing
  /// (CRD_METRICS builds only; capped at SpanCapacity rounds).
  bool TraceRounds = false;
};

/// One producer's corner of the metrics snapshot.
struct ProducerMetricsSnapshot {
  uint32_t Thread = 0;
  uint64_t Recorded = 0; ///< Events accepted into the ring.
  uint64_t Dropped = 0;  ///< Events discarded by DropNewest backpressure.
  uint64_t Drained = 0;  ///< Events the collector pulled out.
  uint64_t Drains = 0;   ///< Collector visits.
  uint64_t RingCapacity = 0;
  std::array<uint64_t, 18> DepthPow2{}; ///< Ring depth per collector visit.
  uint64_t DepthMax = 0;
};

/// One non-empty collector round, for the Chrome-trace collector row.
struct RoundSpan {
  uint64_t BeginNs = 0;
  uint64_t EndNs = 0;
  uint64_t Events = 0;
};

/// Whole-session snapshot; see Session::metricsSnapshot() for validity.
struct IngestMetrics {
  uint64_t Producers = 0;
  uint64_t EventsCollected = 0;
  uint64_t Rounds = 0;
  uint64_t EmptyRounds = 0;
  uint64_t Batches = 0;
  uint64_t DropsTotal = 0;
  uint64_t CollectNs = 0; ///< Total wall time inside drainRound().
  std::array<uint64_t, 24> RoundNsPow2{};
  uint64_t RoundNsMax = 0;
  std::vector<ProducerMetricsSnapshot> PerProducer;
  std::vector<RoundSpan> Spans;
};

/// Registry of producers plus the collector that merges their streams.
class Session {
public:
  /// Hard cap on recorded RoundSpans (first-N truncation) so an opt-in
  /// trace of a long stress run stays bounded.
  static constexpr size_t SpanCapacity = size_t(1) << 20;

  explicit Session(SessionOptions Opts = {});

  /// Stops the collector first (see stop()'s blocking caveat). Does not
  /// finish() the pipeline or wire writer — they outlive the session and
  /// the caller flushes them.
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Live-detection sink; events stream in as EventBatches. The pipeline
  /// must outlive the session. Call StreamPipeline::finish() after
  /// stop()/drainAll() to flush and read races.
  void setPipeline(wire::StreamPipeline *P) { Pipeline = P; }
  /// Record-now-analyze-later sink; receives every collected event in
  /// the merged order. The caller finishes the writer after the session
  /// quiesces.
  void setWireWriter(wire::WireWriter *W) { Writer = W; }

  /// Registers a producer on the next free thread id.
  Recorder attach();
  /// Registers a producer recording as \p Tid. \p RingCapacityOverride
  /// (power of two; 0 = session default) is the per-producer resize
  /// knob — capacity is fixed at registration because a live lock-free
  /// ring cannot grow.
  Recorder attach(ThreadId Tid, size_t RingCapacityOverride = 0);

  /// Spawns the collector thread. Rounds run until stop().
  void start();
  /// Waits until every registered producer has finish()ed and every ring
  /// is drained, then joins the collector. Blocks as long as producers
  /// are still attached — finish the recorders (join the producer
  /// threads) first.
  void stop();

  /// Manual pumping for collector-less use (tests, single-threaded
  /// embedding): drains one round, returns events moved. Must not race
  /// with a start()ed collector.
  size_t drainRound();
  /// Pumps until all producers are finished and drained. Same
  /// precondition as stop(): unfinished recorders make this spin.
  void drainAll();

  size_t producerCount() const;

  /// Events delivered to the sinks. Stable only once quiesced (after
  /// stop() or drainAll()).
  uint64_t eventsCollected() const { return Collected; }

  /// Valid once quiesced — producer tallies ride the ring-close
  /// happens-before edge, so a snapshot taken mid-stream would race.
  IngestMetrics metricsSnapshot() const;

  /// Emits the snapshot as a JSON document (schema: docs/ingestion.md).
  /// Same validity rule as metricsSnapshot().
  void writeMetricsJson(std::ostream &OS) const;

private:
  Recorder attachLocked(ThreadId Tid, size_t Capacity);
  void collectorMain();
  bool allDrained() const;
  void deliver(const Event &E);
  void flushBatch();

  SessionOptions Opts;
  wire::StreamPipeline *Pipeline = nullptr;
  wire::WireWriter *Writer = nullptr;

  /// Guards registration state (Channels/Ptrs/NextTid). The collector
  /// takes it once per round to snapshot the producer list; producers
  /// take it once at attach(); the record fast path never does.
  mutable std::mutex RegMutex;
  /// Deque for stable addresses across registration.
  std::deque<ProducerChannel> Channels;
  /// Registration order — the collector's (deterministic) visit order.
  std::vector<ProducerChannel *> Ptrs;
  uint32_t NextTid = 0;

  /// Collector-only state (single writer).
  std::vector<ProducerChannel *> RoundPtrs; ///< Per-round snapshot of Ptrs.
  std::vector<Event> Scratch;               ///< tryPopN landing pad.
  EventBatch Batch;                         ///< Pipeline-bound fill.
  uint64_t Collected = 0;
  uint64_t Rounds = 0;
  uint64_t EmptyRounds = 0;
  uint64_t Batches = 0;
  uint64_t CollectNs = 0;
  metrics::Pow2Histogram<24> RoundNs;
  std::vector<RoundSpan> Spans;

  std::thread Collector;
  std::atomic<bool> StopRequested{false};
  bool Started = false;
};

/// Renders the collector as a Chrome-trace row (chrome://tracing /
/// Perfetto): one X event per recorded round, events-per-round in args.
/// Complements the detector's writeChromeTrace(); `crd record
/// --chrome-trace` emits this document.
void writeIngestChromeTrace(std::ostream &OS, const IngestMetrics &M);

} // namespace ingest
} // namespace crd

#endif // CRD_INGEST_SESSION_H
