//===- hb/VectorClockState.h - Table 1 state machine ------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online vector-clock state machine of paper Table 1. It maintains the
/// auxiliary maps T : Tid -> VC and L : Lock -> VC and updates them at every
/// synchronization event:
///
///   τ : fork(u)   T(u) ← inc_u(T(τ));  T(τ) ← inc_τ(T(τ))
///   τ : join(u)   T(τ) ← T(τ) ⊔ T(u)
///   τ : acq(l)    T(τ) ← T(τ) ⊔ L(l)
///   τ : rel(l)    L(l) ← T(τ);  T(τ) ← inc_τ(T(τ))
///
/// For an action event τ : o.m(~x)/~y, vc(e) = T(τ). Thread clocks are
/// initialized lazily to inc_τ(⊥), establishing the invariant that τ's own
/// component of T(τ) is strictly larger than τ's component of any clock ever
/// exported by τ — so clocks of events from different threads are never
/// equal, and incomparability is exactly the may-happen-in-parallel ‖.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_HB_VECTORCLOCKSTATE_H
#define CRD_HB_VECTORCLOCKSTATE_H

#include "support/FlatMap.h"
#include "support/VectorClock.h"
#include "trace/Event.h"

#include <vector>

namespace crd {

/// Online happens-before tracker (the "previous work" rows of Table 1).
///
/// The lock map L is split into a small inline array for the first few
/// locks and a FlatMap overflow: most traces guard their objects with a
/// handful of locks, so the acquire/release hot path of the sequential
/// pre-pass is a short linear scan over inline entries instead of a hash
/// probe, and the swiss-table overflow only engages past InlineLockSlots
/// distinct locks.
class VectorClockState {
public:
  VectorClockState() = default;

  /// Processes one event. For synchronization events this applies the
  /// Table 1 update; for action and memory events it is a no-op (the clock
  /// is read with clockOf()).
  void process(const Event &E);

  /// Returns T(τ), the clock an action of \p Thread would be stamped with.
  /// Initializes the thread lazily to inc_τ(⊥) on first use.
  const VectorClock &clockOf(ThreadId Thread);

  /// Copies T(τ) into \p Out, reusing Out's existing storage. The
  /// allocation-free way to snapshot a clock into pooled storage (the
  /// shard batch forwarding path): unlike `Out = clockOf(T)` through a
  /// freshly constructed clock, a pooled Out already holds capacity from
  /// earlier batches and the copy touches no allocator.
  void copyClockInto(ThreadId Thread, VectorClock &Out) {
    Out = clockOf(Thread);
  }

  /// Returns T(τ) if \p Thread has already been initialized (by a
  /// synchronization event or an earlier clockOf), nullptr otherwise —
  /// without forcing the lazy initialization. The run-based pre-pass
  /// builds its per-run clock maps through this so publishing a snapshot
  /// table never initializes threads the trace hasn't touched; consumers
  /// synthesize inc_τ(⊥) themselves for nullptr entries, which is
  /// value-identical to what lazy initialization would produce.
  const VectorClock *initializedClock(ThreadId Thread) const {
    size_t I = Thread.index();
    return I < Threads.size() && Initialized[I] ? &Threads[I] : nullptr;
  }

  /// Returns L(l); ⊥ if the lock was never released.
  const VectorClock &lockClock(LockId Lock) const;

  /// Number of threads seen so far.
  size_t numThreads() const { return Threads.size(); }

  //===--------------------------------------------------------------------===//
  // Chunk-memoization support (detect/ChunkMemo.h). Every Table 1 update
  // (and every lazy initialization) stamps the affected thread with a
  // machine-wide monotonic counter, so the memo layer can prove "these
  // threads' clocks are exactly as they were when the summary was
  // recorded" by comparing one integer per footprint thread — no clock
  // comparison, no hashing. Lock clocks carry no version: summarizable
  // chunks are sync-free, so they never read L.
  //===--------------------------------------------------------------------===//

  /// Version stamp of \p Thread's clock: 0 while uninitialized, else the
  /// mutation counter value of its last update.
  uint64_t threadVersion(ThreadId Thread) const {
    size_t I = Thread.index();
    return I < Versions.size() ? Versions[I] : 0;
  }

  /// Total Table 1 mutations (incl. lazy initializations) so far. If this
  /// is unchanged across an interval, no thread clock changed in it.
  uint64_t mutationStamp() const { return MutCount; }

private:
  /// Locks held inline before spilling to the overflow table. Covers the
  /// 1–4-lock common case; see the class comment.
  static constexpr size_t InlineLockSlots = 4;

  VectorClock &threadClock(ThreadId Thread);

  /// Returns L(l) for update, creating the entry (inline first, then
  /// overflow) on first release of \p Lock.
  VectorClock &lockClockFor(LockId Lock);

  /// Returns the existing L(l) or nullptr if \p Lock was never released.
  const VectorClock *findLockClock(LockId Lock) const;

  /// Stamps thread \p I as mutated now (see threadVersion()).
  void touch(size_t I) { Versions[I] = ++MutCount; }

  // Dense per-thread clocks; Initialized[i] records lazy initialization,
  // Versions[i] the mutation stamp of the last update.
  std::vector<VectorClock> Threads;
  std::vector<bool> Initialized;
  std::vector<uint64_t> Versions;
  uint64_t MutCount = 0;

  struct LockSlot {
    LockId Lock;
    VectorClock Clock;
  };
  LockSlot InlineLocks[InlineLockSlots];
  size_t NumInlineLocks = 0;
  FlatMap<LockId, VectorClock> OverflowLocks;

  VectorClock Bottom;
};

} // namespace crd

#endif // CRD_HB_VECTORCLOCKSTATE_H
