//===- hb/HappensBefore.cpp - Offline happens-before relation --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "hb/HappensBefore.h"

using namespace crd;

HappensBefore::HappensBefore(const Trace &T) {
  Clocks.reserve(T.size());
  VectorClockState State;
  for (const Event &E : T) {
    // An event is stamped with the clock the thread holds *while performing
    // it*: acquire and join first merge their incoming edge (the prior
    // release / the joined thread) and are stamped afterwards; fork and
    // release are stamped before their outgoing update (child seeding /
    // lock transfer and increment), so they are ordered before the events
    // they enable but not after anything new.
    bool MergesIncomingEdge =
        E.kind() == EventKind::Acquire || E.kind() == EventKind::Join;
    if (MergesIncomingEdge) {
      State.process(E);
      Clocks.push_back(State.clockOf(E.thread()));
    } else {
      Clocks.push_back(State.clockOf(E.thread()));
      State.process(E);
    }
  }
}
