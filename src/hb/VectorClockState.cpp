//===- hb/VectorClockState.cpp - Table 1 state machine ---------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "hb/VectorClockState.h"

#include <cassert>

using namespace crd;

VectorClock &VectorClockState::threadClock(ThreadId Thread) {
  if (Thread.index() >= Threads.size()) {
    Threads.resize(Thread.index() + 1);
    Initialized.resize(Thread.index() + 1, false);
    Versions.resize(Thread.index() + 1, 0);
  }
  if (!Initialized[Thread.index()]) {
    // Lazy initialization to inc_τ(⊥): each thread starts one step into its
    // own local time. See the header comment for why this matters.
    Threads[Thread.index()].increment(Thread);
    Initialized[Thread.index()] = true;
    touch(Thread.index());
  }
  return Threads[Thread.index()];
}

const VectorClock &VectorClockState::clockOf(ThreadId Thread) {
  return threadClock(Thread);
}

const VectorClock *VectorClockState::findLockClock(LockId Lock) const {
  for (size_t I = 0; I != NumInlineLocks; ++I)
    if (InlineLocks[I].Lock == Lock)
      return &InlineLocks[I].Clock;
  return OverflowLocks.find(Lock);
}

VectorClock &VectorClockState::lockClockFor(LockId Lock) {
  for (size_t I = 0; I != NumInlineLocks; ++I)
    if (InlineLocks[I].Lock == Lock)
      return InlineLocks[I].Clock;
  if (NumInlineLocks < InlineLockSlots) {
    // First sighting of this lock with an inline slot free. Overflow can't
    // hold it: locks only spill once all inline slots are taken, and the
    // inline count never shrinks.
    InlineLocks[NumInlineLocks].Lock = Lock;
    return InlineLocks[NumInlineLocks++].Clock;
  }
  return OverflowLocks[Lock];
}

const VectorClock &VectorClockState::lockClock(LockId Lock) const {
  const VectorClock *Found = findLockClock(Lock);
  return Found ? *Found : Bottom;
}

void VectorClockState::process(const Event &E) {
  switch (E.kind()) {
  case EventKind::Fork: {
    // T(u) ← inc_u(T(τ)); T(τ) ← inc_τ(T(τ)).
    ThreadId Child = E.other();
    // Grow the table for the child BEFORE taking a reference to the parent
    // clock: resizing invalidates references into Threads.
    if (Child.index() >= Threads.size()) {
      Threads.resize(Child.index() + 1);
      Initialized.resize(Child.index() + 1, false);
      Versions.resize(Child.index() + 1, 0);
    }
    assert(!Initialized[Child.index()] && "forked thread already initialized");
    VectorClock &Parent = threadClock(E.thread());
    VectorClock ChildClock = Parent;
    ChildClock.increment(Child);
    Threads[Child.index()] = std::move(ChildClock);
    Initialized[Child.index()] = true;
    touch(Child.index());
    threadClock(E.thread()).increment(E.thread());
    touch(E.thread().index());
    return;
  }
  case EventKind::Join: {
    // T(τ) ← T(τ) ⊔ T(u).
    VectorClock &Self = threadClock(E.thread());
    Self.joinWith(threadClock(E.other()));
    touch(E.thread().index());
    return;
  }
  case EventKind::Acquire: {
    // T(τ) ← T(τ) ⊔ L(l).
    if (const VectorClock *L = findLockClock(E.lock())) {
      threadClock(E.thread()).joinWith(*L);
      touch(E.thread().index());
    } else {
      threadClock(E.thread()); // Still forces lazy initialization.
    }
    return;
  }
  case EventKind::Release: {
    // L(l) ← T(τ); T(τ) ← inc_τ(T(τ)).
    VectorClock &Self = threadClock(E.thread());
    lockClockFor(E.lock()) = Self;
    Self.increment(E.thread());
    touch(E.thread().index());
    return;
  }
  case EventKind::Invoke:
  case EventKind::Read:
  case EventKind::Write:
  case EventKind::TxBegin:
  case EventKind::TxEnd:
    threadClock(E.thread()); // Forces lazy initialization only.
    return;
  }
}
