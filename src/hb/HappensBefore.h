//===- hb/HappensBefore.h - Offline happens-before relation -----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An offline happens-before relation over a whole trace (paper §3.2): every
/// event is stamped with its vector clock, and pairwise order/‖ queries are
/// answered from the stored clocks. This is the reference oracle used to
/// validate the online detectors (Theorem 5.1 tests) and the direct Θ(|A|²)
/// baseline detector.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_HB_HAPPENSBEFORE_H
#define CRD_HB_HAPPENSBEFORE_H

#include "hb/VectorClockState.h"
#include "trace/Trace.h"

#include <cassert>
#include <vector>

namespace crd {

/// Event-indexed happens-before relation for one trace.
class HappensBefore {
public:
  /// Stamps every event of \p T by running the Table 1 machine.
  explicit HappensBefore(const Trace &T);

  size_t size() const { return Clocks.size(); }

  /// vc(e_i).
  const VectorClock &clock(size_t EventIndex) const {
    assert(EventIndex < Clocks.size() && "event index out of range");
    return Clocks[EventIndex];
  }

  /// e_i � e_j (strictly happens before; requires i ≤π j).
  bool happensBefore(size_t I, size_t J) const {
    return I < J && Clocks[I].leq(Clocks[J]);
  }

  /// e_i ‖ e_j: neither is ordered before the other.
  bool mayHappenInParallel(size_t I, size_t J) const {
    return Clocks[I].concurrentWith(Clocks[J]);
  }

private:
  std::vector<VectorClock> Clocks;
};

} // namespace crd

#endif // CRD_HB_HAPPENSBEFORE_H
