//===- locks/AbstractLockManager.h - access points as abstract locks -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The other application of access point representations the paper calls
/// out (§2 "Discussion", §8): optimistic/pessimistic concurrency control in
/// the style of transactional boosting and Kulkarni et al.'s abstract
/// locks. Every access point class acts as an abstract lock family
/// (value-carrying classes are key-indexed); two transactions may hold
/// locks on the same object concurrently exactly when every pair of their
/// touched points commutes — i.e. conflict = the representation's Co, the
/// same relation the race detector probes.
///
/// The manager implements two-phase locking at the action level:
/// tryAcquire() atomically takes all points an action touches, failing
/// without side effects when any needed point is held in a conflicting
/// way by another transaction; releaseAll() ends the transaction.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_LOCKS_ABSTRACTLOCKMANAGER_H
#define CRD_LOCKS_ABSTRACTLOCKMANAGER_H

#include "access/Provider.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace crd {

/// Identifies a transaction (client-chosen).
using TxId = uint64_t;

/// Two-phase abstract lock manager for one object, parameterized by its
/// access point representation.
class AbstractLockManager {
public:
  explicit AbstractLockManager(const AccessPointProvider &Provider)
      : Provider(Provider) {}

  /// Attempts to acquire, on behalf of \p Tx, every access point touched
  /// by \p A. Succeeds — acquiring all of them — iff no touched point
  /// conflicts with a point currently held by a *different* transaction.
  /// On failure nothing is acquired. Re-acquiring points the transaction
  /// already holds is cheap and idempotent.
  bool tryAcquire(TxId Tx, const Action &A);

  /// Releases every point held by \p Tx.
  void releaseAll(TxId Tx);

  /// Number of distinct points currently held by \p Tx.
  size_t heldBy(TxId Tx) const;

  /// Total number of distinct points held by any transaction.
  size_t totalHeldPoints() const { return Held.size(); }

  /// Number of failed tryAcquire calls so far (the "abort" count of an
  /// optimistic scheme built on this manager).
  size_t conflictsObserved() const { return Conflicts; }

private:
  struct Holders {
    /// Transactions holding this exact point, with hold counts.
    std::unordered_map<TxId, uint32_t> ByTx;
  };

  bool wouldConflict(TxId Tx, const AccessPoint &Pt) const;

  const AccessPointProvider &Provider;
  std::unordered_map<AccessPoint, Holders> Held;
  std::unordered_map<TxId, std::vector<AccessPoint>> PointsOf;
  size_t Conflicts = 0;
  std::vector<AccessPoint> Scratch;
};

} // namespace crd

#endif // CRD_LOCKS_ABSTRACTLOCKMANAGER_H
