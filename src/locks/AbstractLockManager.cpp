//===- locks/AbstractLockManager.cpp - access points as abstract locks --------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "locks/AbstractLockManager.h"

#include <cassert>

using namespace crd;

bool AbstractLockManager::wouldConflict(TxId Tx, const AccessPoint &Pt) const {
  // Mirror of the detector's phase-1 probe: enumerate the (bounded)
  // conflict partners of Pt's class and look for a holder that is not Tx.
  for (uint32_t Partner : Provider.conflictsOf(Pt.ClassId)) {
    AccessPoint Key = Provider.classCarriesValue(Partner)
                          ? AccessPoint::withValue(Partner, Pt.Val)
                          : AccessPoint::plain(Partner);
    auto It = Held.find(Key);
    if (It == Held.end())
      continue;
    for (const auto &[Holder, Count] : It->second.ByTx) {
      (void)Count;
      if (Holder != Tx)
        return true;
    }
  }
  return false;
}

bool AbstractLockManager::tryAcquire(TxId Tx, const Action &A) {
  Scratch.clear();
  Provider.touches(A, Scratch);

  for (const AccessPoint &Pt : Scratch) {
    if (wouldConflict(Tx, Pt)) {
      ++Conflicts;
      return false;
    }
  }
  // All clear: take every point.
  for (const AccessPoint &Pt : Scratch) {
    Holders &H = Held[Pt];
    auto [It, Inserted] = H.ByTx.try_emplace(Tx, 0);
    ++It->second;
    if (Inserted || It->second == 1)
      PointsOf[Tx].push_back(Pt);
  }
  return true;
}

void AbstractLockManager::releaseAll(TxId Tx) {
  auto It = PointsOf.find(Tx);
  if (It == PointsOf.end())
    return;
  for (const AccessPoint &Pt : It->second) {
    auto HeldIt = Held.find(Pt);
    assert(HeldIt != Held.end() && "held-point bookkeeping out of sync");
    HeldIt->second.ByTx.erase(Tx);
    if (HeldIt->second.ByTx.empty())
      Held.erase(HeldIt);
  }
  PointsOf.erase(It);
}

size_t AbstractLockManager::heldBy(TxId Tx) const {
  auto It = PointsOf.find(Tx);
  return It == PointsOf.end() ? 0 : It->second.size();
}
