//===- trace/Event.h - Trace events (paper §3.1, Table 1) -------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Events of an execution trace. Besides the action events of §3.1, traces
/// carry the synchronization events of Table 1 (fork/join/acquire/release)
/// and the low-level read/write events consumed by the FastTrack baseline
/// (the paper's RoadRunner substrate instruments every memory access).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRACE_EVENT_H
#define CRD_TRACE_EVENT_H

#include "trace/Action.h"

#include <cassert>
#include <iosfwd>
#include <string>

namespace crd {

/// Discriminates the event payload.
enum class EventKind : uint8_t {
  Fork,    ///< τ : fork(u) — thread τ creates thread u.
  Join,    ///< τ : join(u) — thread τ waits for thread u to terminate.
  Acquire, ///< τ : acq(l) — thread τ acquires lock l.
  Release, ///< τ : rel(l) — thread τ releases lock l.
  Invoke,  ///< τ : o.m(~u)/~v — an action event.
  Read,    ///< τ reads memory location v (low-level; FastTrack only).
  Write,   ///< τ writes memory location v (low-level; FastTrack only).
  TxBegin, ///< τ opens an atomic block (used by the atomicity checker).
  TxEnd,   ///< τ closes its atomic block.
};

/// One occurrence τ : a in a trace.
class Event {
public:
  /// Placeholder event (a TxBegin on thread 0) so events can sit in
  /// default-constructed container slots — ring buffers, decode cursors —
  /// that are always overwritten before being read.
  Event() : Event(EventKind::TxBegin, ThreadId(0)) {}

  static Event fork(ThreadId Thread, ThreadId Child) {
    Event E(EventKind::Fork, Thread);
    E.Other = Child;
    return E;
  }
  static Event join(ThreadId Thread, ThreadId Child) {
    Event E(EventKind::Join, Thread);
    E.Other = Child;
    return E;
  }
  static Event acquire(ThreadId Thread, LockId Lock) {
    Event E(EventKind::Acquire, Thread);
    E.Lock = Lock;
    return E;
  }
  static Event release(ThreadId Thread, LockId Lock) {
    Event E(EventKind::Release, Thread);
    E.Lock = Lock;
    return E;
  }
  static Event invoke(ThreadId Thread, Action TheAction) {
    Event E(EventKind::Invoke, Thread);
    E.TheAction = std::move(TheAction);
    return E;
  }
  static Event read(ThreadId Thread, VarId Var) {
    Event E(EventKind::Read, Thread);
    E.Var = Var;
    return E;
  }
  static Event write(ThreadId Thread, VarId Var) {
    Event E(EventKind::Write, Thread);
    E.Var = Var;
    return E;
  }
  static Event txBegin(ThreadId Thread) {
    return Event(EventKind::TxBegin, Thread);
  }
  static Event txEnd(ThreadId Thread) {
    return Event(EventKind::TxEnd, Thread);
  }

  EventKind kind() const { return Kind; }
  ThreadId thread() const { return Thread; }

  bool isSync() const {
    return Kind == EventKind::Fork || Kind == EventKind::Join ||
           Kind == EventKind::Acquire || Kind == EventKind::Release;
  }
  bool isInvoke() const { return Kind == EventKind::Invoke; }
  bool isMemoryAccess() const {
    return Kind == EventKind::Read || Kind == EventKind::Write;
  }

  /// Forked/joined thread; valid for Fork and Join events.
  ThreadId other() const {
    assert((Kind == EventKind::Fork || Kind == EventKind::Join) &&
           "event has no target thread");
    return Other;
  }

  /// The lock; valid for Acquire and Release events.
  LockId lock() const {
    assert((Kind == EventKind::Acquire || Kind == EventKind::Release) &&
           "event has no lock");
    return Lock;
  }

  /// The memory location; valid for Read and Write events.
  VarId var() const {
    assert(isMemoryAccess() && "event has no memory location");
    return Var;
  }

  /// The invoked action; valid for Invoke events.
  const Action &action() const {
    assert(Kind == EventKind::Invoke && "event is not an action event");
    return TheAction;
  }

  /// Renders e.g. `T2: o1.put("a.com", 7)/nil` or `T1: fork T2`.
  std::string toString() const;

private:
  Event(EventKind Kind, ThreadId Thread) : Kind(Kind), Thread(Thread) {}

  EventKind Kind;
  ThreadId Thread;
  ThreadId Other;
  LockId Lock;
  VarId Var;
  Action TheAction;
};

std::ostream &operator<<(std::ostream &OS, const Event &E);

} // namespace crd

#endif // CRD_TRACE_EVENT_H
