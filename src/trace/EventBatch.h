//===- trace/EventBatch.h - Self-contained event batches --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A batch of decoded events plus the sidecar data the run-based shard
/// pipeline wants alongside them: a contiguous kind-byte array (one byte
/// per event, SIMD-scannable) and the sync-event index — the positions of
/// fork/join/acquire/release events inside the batch, in order. Runs of
/// events between consecutive sync positions share one clock, which is
/// what lets the parallel detector's pre-pass visit O(#sync) events
/// instead of O(#events).
///
/// A batch owns its payloads: invoke values are pinned into the batch's
/// own arena on append (inline for small actions, arena-spilled for wide
/// ones — never a per-action heap block), so a filled batch is
/// self-contained and outlives whatever decoder storage the events came
/// from. Batches are movable with stable interior pointers (the vectors'
/// heap buffers and the arena's chunks survive the move), which is how
/// the pipeline hands whole batches to shard workers without copying.
/// clear() keeps every buffer and arena chunk, so recycled batches fill
/// allocation-free in the steady state.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRACE_EVENTBATCH_H
#define CRD_TRACE_EVENTBATCH_H

#include "support/Arena.h"
#include "support/KindScan.h"
#include "trace/Event.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace crd {

/// Kind bytes strictly below this bound are the Table 1 synchronization
/// kinds — the encoding puts fork/join/acquire/release first exactly so
/// the sync scan is one byte-compare (KindScan.h).
inline constexpr uint8_t SyncKindBound =
    static_cast<uint8_t>(EventKind::Invoke);
static_assert(static_cast<uint8_t>(EventKind::Fork) < SyncKindBound &&
                  static_cast<uint8_t>(EventKind::Join) < SyncKindBound &&
                  static_cast<uint8_t>(EventKind::Acquire) < SyncKindBound &&
                  static_cast<uint8_t>(EventKind::Release) < SyncKindBound &&
                  static_cast<uint8_t>(EventKind::Invoke) >= SyncKindBound &&
                  static_cast<uint8_t>(EventKind::Read) >= SyncKindBound &&
                  static_cast<uint8_t>(EventKind::Write) >= SyncKindBound &&
                  static_cast<uint8_t>(EventKind::TxBegin) >= SyncKindBound &&
                  static_cast<uint8_t>(EventKind::TxEnd) >= SyncKindBound,
              "sync kinds must be exactly the kind bytes below SyncKindBound");

/// A self-contained, recyclable batch of events with a kind array and a
/// sync-event index.
struct EventBatch {
  std::vector<Event> Events;
  /// Events[i]'s kind as a raw byte — the contiguous array the SIMD scan
  /// walks (Event itself is too wide to scan directly).
  std::vector<uint8_t> Kinds;
  /// Positions i (ascending) with Kinds[i] < SyncKindBound. Filled either
  /// during decode (WireReader::nextBatch, kinds in hand anyway) or by
  /// finalizeSyncIndex() after bulk appends.
  std::vector<uint32_t> SyncPos;
  /// Pinned invoke payloads for actions wider than the inline capacity.
  Arena Values;

  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }

  /// Appends a copy of \p E, pinning its action payload into this batch
  /// (so the source — e.g. a wire decoder's per-chunk arena — may reset).
  /// Does not maintain SyncPos; call finalizeSyncIndex() once filled.
  void append(const Event &E) {
    Kinds.push_back(static_cast<uint8_t>(E.kind()));
    if (E.kind() == EventKind::Invoke)
      Events.push_back(Event::invoke(E.thread(), E.action().copyInto(Values)));
    else
      Events.push_back(E);
  }

  /// Appends \p E whose payload is already pinned in this batch's arena
  /// (the wire decoder's batch path decodes values straight into Values).
  /// The move keeps arena views intact. Does not maintain SyncPos.
  void appendPinned(Event &&E) {
    Kinds.push_back(static_cast<uint8_t>(E.kind()));
    Events.push_back(std::move(E));
  }

  /// Bulk-appends events [From, From+N) of \p Src, pinning invoke payloads
  /// into this batch's arena and extending Kinds. Unlike append(), this
  /// DOES maintain SyncPos: the relevant slice of Src's (sorted) sync
  /// index is rebased instead of rescanning the kinds — the memoized wire
  /// reader serves cached chunks through here, where a rescan would eat
  /// into the decode-skipping win.
  void appendRange(const EventBatch &Src, size_t From, size_t N) {
    size_t Base = Events.size();
    Kinds.insert(Kinds.end(), Src.Kinds.begin() + From,
                 Src.Kinds.begin() + From + N);
    Events.reserve(Base + N);
    for (size_t I = From; I != From + N; ++I) {
      const Event &E = Src.Events[I];
      if (E.kind() == EventKind::Invoke)
        Events.push_back(
            Event::invoke(E.thread(), E.action().copyInto(Values)));
      else
        Events.push_back(E);
    }
    auto First = std::lower_bound(Src.SyncPos.begin(), Src.SyncPos.end(),
                                  static_cast<uint32_t>(From));
    auto Last = std::lower_bound(First, Src.SyncPos.end(),
                                 static_cast<uint32_t>(From + N));
    for (auto It = First; It != Last; ++It)
      SyncPos.push_back(static_cast<uint32_t>(*It - From + Base));
  }

  /// Rebuilds the sync-event index from the kind array with the SIMD scan.
  void finalizeSyncIndex() {
    SyncPos.clear();
    appendKindPositions(Kinds.data(), Kinds.size(), SyncKindBound,
                        /*Base=*/0, SyncPos);
  }

  /// Resident footprint of this batch: vector capacities plus retained
  /// arena chunks. Stable across clear() (which frees nothing), so a
  /// serving session can budget its recycled batches against a memory
  /// ceiling without re-measuring per fill.
  size_t memoryFootprint() const {
    return Events.capacity() * sizeof(Event) + Kinds.capacity() +
           SyncPos.capacity() * sizeof(uint32_t) + Values.bytesReserved();
  }

  /// Drops the events but keeps vector capacity and arena chunks, so the
  /// next fill is allocation-free.
  void clear() {
    Events.clear();
    Kinds.clear();
    SyncPos.clear();
    Values.reset();
  }
};

} // namespace crd

#endif // CRD_TRACE_EVENTBATCH_H
