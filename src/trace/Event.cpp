//===- trace/Event.cpp - Trace events --------------------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "trace/Event.h"

#include <ostream>
#include <sstream>

using namespace crd;

std::string Event::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const Event &E) {
  OS << 'T' << E.thread().index() << ": ";
  switch (E.kind()) {
  case EventKind::Fork:
    return OS << "fork T" << E.other().index();
  case EventKind::Join:
    return OS << "join T" << E.other().index();
  case EventKind::Acquire:
    return OS << "acq L" << E.lock().index();
  case EventKind::Release:
    return OS << "rel L" << E.lock().index();
  case EventKind::Invoke:
    return OS << E.action();
  case EventKind::Read:
    return OS << "read V" << E.var().index();
  case EventKind::Write:
    return OS << "write V" << E.var().index();
  case EventKind::TxBegin:
    return OS << "txbegin";
  case EventKind::TxEnd:
    return OS << "txend";
  }
  return OS;
}
