//===- trace/Action.h - Method invocations (paper §3.1) ---------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Actions: atomic method invocations o.m(~x)/~y on shared objects
/// (paper §3.1). Objects are assumed linearizable, so an invocation is a
/// single atomic transition and is fully described by the object, the method
/// and the concrete argument/return values.
///
/// Values are stored as one contiguous sequence ~u~v (arguments then
/// returns) in one of three places:
///   * inline, when the action has at most InlineValues values — the
///     dictionary/set/queue workloads never exceed three, so owning
///     actions are allocation-free in the common case;
///   * a heap block, for larger owning actions;
///   * externally (an arena view), for actions decoded from the wire —
///     the values belong to the decoder's per-chunk arena and the action
///     holds only a pointer.
/// Copying an action always deep-copies the values into the new action
/// (inline or heap), so a copy is safe to keep past the source arena's
/// reset; moving preserves the view. This is the lifetime contract the
/// streaming pipeline relies on: batches that cross a chunk boundary copy
/// the actions they retain.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRACE_ACTION_H
#define CRD_TRACE_ACTION_H

#include "support/Arena.h"
#include "support/Ids.h"
#include "support/Symbol.h"
#include "support/Value.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace crd {

/// One method invocation o.m(~u)/~v.
///
/// The flattened sequence w1..wn = ~u~v (arguments followed by returns) is
/// how specification variables are numbered (paper §6.2), so values() and
/// value(i) expose that view directly.
class Action {
public:
  /// Values held inline by owning actions. put(k,v)/prev — the widest
  /// shape the built-in workloads emit — uses three.
  static constexpr uint32_t InlineValues = 4;

  Action() = default;

  Action(ObjectId Obj, Symbol Method, const std::vector<Value> &Args,
         const std::vector<Value> &Rets)
      : Obj(Obj), Method(Method), NArgs(static_cast<uint32_t>(Args.size())),
        NRets(static_cast<uint32_t>(Rets.size())) {
    Value *Dst = allocateOwned(NArgs + NRets);
    std::copy(Args.begin(), Args.end(), Dst);
    std::copy(Rets.begin(), Rets.end(), Dst + NArgs);
  }

  /// Convenience constructor for the common single-return shape.
  Action(ObjectId Obj, Symbol Method, const std::vector<Value> &Args,
         Value Ret)
      : Obj(Obj), Method(Method), NArgs(static_cast<uint32_t>(Args.size())),
        NRets(1) {
    Value *Dst = allocateOwned(NArgs + 1);
    std::copy(Args.begin(), Args.end(), Dst);
    Dst[NArgs] = Ret;
  }

  /// View constructor: \p Vals points at NArgs arguments followed by NRets
  /// returns owned by someone else (the wire decoder's arena). The action
  /// is valid only as long as that storage; copy it to detach.
  Action(ObjectId Obj, Symbol Method, const Value *Vals, uint32_t NArgs,
         uint32_t NRets)
      : Obj(Obj), Method(Method), Vals(Vals), NArgs(NArgs), NRets(NRets) {}

  Action(const Action &Other) { copyFrom(Other); }

  Action &operator=(const Action &Other) {
    if (this != &Other) {
      Heap.reset();
      copyFrom(Other);
    }
    return *this;
  }

  Action(Action &&Other) noexcept { moveFrom(std::move(Other)); }

  Action &operator=(Action &&Other) noexcept {
    if (this != &Other) {
      Heap.reset();
      moveFrom(std::move(Other));
    }
    return *this;
  }

  ObjectId object() const { return Obj; }
  Symbol method() const { return Method; }
  std::span<const Value> args() const { return {Vals, NArgs}; }
  std::span<const Value> rets() const { return {Vals + NArgs, NRets}; }

  /// True when this action's values live in storage it does not own (see
  /// the view constructor).
  bool isView() const {
    return Vals != nullptr && Vals != Inline && Vals != Heap.get();
  }

  /// Number of flattened values: |args| + |rets|.
  size_t numValues() const { return size_t(NArgs) + NRets; }

  /// The i-th flattened value (0-based over args then rets).
  const Value &value(size_t I) const {
    assert(I < numValues() && "flattened value index out of range");
    return Vals[I];
  }

  /// Flattened values ~u~v as one vector.
  std::vector<Value> values() const;

  /// Flattened values ~u~v as a view over the action's contiguous value
  /// storage. Valid as long as the action (or, for views, the arena).
  std::span<const Value> flatValues() const { return {Vals, numValues()}; }

  /// Copies this action, placing spilled values (beyond the inline
  /// capacity) in \p Spill instead of a per-action heap block. The copy is
  /// owning for small actions and an arena view otherwise, so batch
  /// owners that reset their arena between batches copy actions of any
  /// size without heap traffic.
  Action copyInto(Arena &Spill) const {
    size_t Count = numValues();
    if (Count <= InlineValues)
      return *this; // Copy ctor lands inline: already allocation-free.
    Value *Block = Spill.allocate<Value>(Count);
    std::copy(Vals, Vals + Count, Block);
    return Action(Obj, Method, Block, NArgs, NRets);
  }

  friend bool operator==(const Action &A, const Action &B) {
    return A.Obj == B.Obj && A.Method == B.Method && A.NArgs == B.NArgs &&
           A.NRets == B.NRets &&
           std::equal(A.Vals, A.Vals + A.numValues(), B.Vals);
  }
  friend bool operator!=(const Action &A, const Action &B) {
    return !(A == B);
  }

  /// Renders e.g. `o1.put("a.com", 7)/nil`.
  std::string toString() const;

private:
  /// Points Vals at owned storage for \p Count values (inline if they fit,
  /// a fresh heap block otherwise) and returns it for filling.
  Value *allocateOwned(size_t Count) {
    Value *Dst = Inline;
    if (Count > InlineValues) {
      Heap = std::make_unique<Value[]>(Count);
      Dst = Heap.get();
    }
    Vals = Dst;
    return Dst;
  }

  /// Deep copy: always lands in owned storage, detaching from any arena
  /// the source viewed. Requires Heap to be empty.
  void copyFrom(const Action &Other) {
    Obj = Other.Obj;
    Method = Other.Method;
    NArgs = Other.NArgs;
    NRets = Other.NRets;
    size_t Count = Other.numValues();
    if (Count == 0) {
      Vals = nullptr;
      return;
    }
    std::copy(Other.Vals, Other.Vals + Count, allocateOwned(Count));
  }

  /// Move: steals heap blocks, copies inline values, and keeps views as
  /// views (the values stay in the external storage). Requires Heap to be
  /// empty.
  void moveFrom(Action &&Other) {
    Obj = Other.Obj;
    Method = Other.Method;
    NArgs = Other.NArgs;
    NRets = Other.NRets;
    if (Other.Vals == Other.Inline) {
      std::copy(Other.Inline, Other.Inline + Other.numValues(), Inline);
      Vals = Inline;
    } else {
      Heap = std::move(Other.Heap); // Null for views; Vals stays external.
      Vals = Other.Vals;
    }
    Other.Vals = nullptr;
    Other.NArgs = Other.NRets = 0;
  }

  ObjectId Obj;
  Symbol Method;
  /// The flattened values ~u~v: Inline, Heap.get(), or external storage.
  const Value *Vals = nullptr;
  uint32_t NArgs = 0;
  uint32_t NRets = 0;
  Value Inline[InlineValues];
  std::unique_ptr<Value[]> Heap;
};

std::ostream &operator<<(std::ostream &OS, const Action &A);

} // namespace crd

#endif // CRD_TRACE_ACTION_H
