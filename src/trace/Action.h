//===- trace/Action.h - Method invocations (paper §3.1) ---------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Actions: atomic method invocations o.m(~u)/~v on shared objects
/// (paper §3.1). Objects are assumed linearizable, so an invocation is a
/// single atomic transition and is fully described by the object, the method
/// and the concrete argument/return values.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRACE_ACTION_H
#define CRD_TRACE_ACTION_H

#include "support/Ids.h"
#include "support/Symbol.h"
#include "support/Value.h"

#include <cassert>
#include <iosfwd>
#include <string>
#include <vector>

namespace crd {

/// One method invocation o.m(~u)/~v.
///
/// The flattened sequence w1..wn = ~u~v (arguments followed by returns) is
/// how specification variables are numbered (paper §6.2), so values() and
/// value(i) expose that view directly.
class Action {
public:
  Action() = default;
  Action(ObjectId Obj, Symbol Method, std::vector<Value> Args,
         std::vector<Value> Rets)
      : Obj(Obj), Method(Method), Args(std::move(Args)),
        Rets(std::move(Rets)) {}

  /// Convenience constructor for the common single-return shape.
  Action(ObjectId Obj, Symbol Method, std::vector<Value> Args, Value Ret)
      : Action(Obj, Method, std::move(Args), std::vector<Value>{Ret}) {}

  ObjectId object() const { return Obj; }
  Symbol method() const { return Method; }
  const std::vector<Value> &args() const { return Args; }
  const std::vector<Value> &rets() const { return Rets; }

  /// Number of flattened values: |args| + |rets|.
  size_t numValues() const { return Args.size() + Rets.size(); }

  /// The i-th flattened value (0-based over args then rets).
  const Value &value(size_t I) const {
    assert(I < numValues() && "flattened value index out of range");
    return I < Args.size() ? Args[I] : Rets[I - Args.size()];
  }

  /// Flattened values ~u~v as one vector.
  std::vector<Value> values() const;

  friend bool operator==(const Action &A, const Action &B) {
    return A.Obj == B.Obj && A.Method == B.Method && A.Args == B.Args &&
           A.Rets == B.Rets;
  }
  friend bool operator!=(const Action &A, const Action &B) {
    return !(A == B);
  }

  /// Renders e.g. `o1.put("a.com", 7)/nil`.
  std::string toString() const;

private:
  ObjectId Obj;
  Symbol Method;
  std::vector<Value> Args;
  std::vector<Value> Rets;
};

std::ostream &operator<<(std::ostream &OS, const Action &A);

} // namespace crd

#endif // CRD_TRACE_ACTION_H
