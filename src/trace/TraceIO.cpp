//===- trace/TraceIO.cpp - Trace text format -------------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include "support/CharCursor.h"

#include <cctype>
#include <charconv>
#include <ostream>
#include <sstream>

using namespace crd;

void crd::writeTrace(std::ostream &OS, const Trace &T) { OS << T; }

std::string crd::traceToString(const Trace &T) {
  std::ostringstream OS;
  OS << T;
  return OS.str();
}

namespace {

/// Token kinds of the trace lexer.
enum class TokKind {
  Eof,
  Newline,
  Ident,   // fork, join, acq, T1, o3, nil, true, ...
  Integer, // 42, -7
  String,  // "a.com"
  Colon,
  Dot,
  Comma,
  LParen,
  RParen,
  Slash,
  Error,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLocation Loc;
  std::string_view Text; // For Ident.
  int64_t IntValue = 0;  // For Integer.
  std::string StrValue;  // For String (unescaped).
};

/// Splits the input into tokens; newlines are significant (they terminate
/// statements).
class TraceLexer {
public:
  TraceLexer(std::string_view Text, DiagnosticEngine &Diags)
      : Cursor(Text), Diags(Diags) {}

  Token next() {
    skipHorizontalSpaceAndComments();
    Token Tok;
    Tok.Loc = Cursor.location();
    if (Cursor.atEnd())
      return Tok; // Eof.

    char C = Cursor.peek();
    if (C == '\n') {
      Cursor.advance();
      Tok.Kind = TokKind::Newline;
      return Tok;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdent();
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && std::isdigit(static_cast<unsigned char>(Cursor.peekNext()))))
      return lexInteger();
    if (C == '"')
      return lexString();

    Cursor.advance();
    switch (C) {
    case ':':
      Tok.Kind = TokKind::Colon;
      return Tok;
    case '.':
      Tok.Kind = TokKind::Dot;
      return Tok;
    case ',':
      Tok.Kind = TokKind::Comma;
      return Tok;
    case '(':
      Tok.Kind = TokKind::LParen;
      return Tok;
    case ')':
      Tok.Kind = TokKind::RParen;
      return Tok;
    case '/':
      Tok.Kind = TokKind::Slash;
      return Tok;
    default:
      Diags.error(Tok.Loc, std::string("unexpected character '") + C + "'");
      Tok.Kind = TokKind::Error;
      return Tok;
    }
  }

private:
  void skipHorizontalSpaceAndComments() {
    while (!Cursor.atEnd()) {
      char C = Cursor.peek();
      if (C == ' ' || C == '\t' || C == '\r') {
        Cursor.advance();
        continue;
      }
      if (C == '#') {
        while (!Cursor.atEnd() && Cursor.peek() != '\n')
          Cursor.advance();
        continue;
      }
      break;
    }
  }

  Token lexIdent() {
    Token Tok;
    Tok.Loc = Cursor.location();
    size_t Begin = Cursor.offset();
    while (!Cursor.atEnd()) {
      char C = Cursor.peek();
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
        break;
      Cursor.advance();
    }
    Tok.Kind = TokKind::Ident;
    Tok.Text = Cursor.slice(Begin, Cursor.offset());
    return Tok;
  }

  Token lexInteger() {
    Token Tok;
    Tok.Loc = Cursor.location();
    size_t Begin = Cursor.offset();
    if (Cursor.peek() == '-')
      Cursor.advance();
    while (std::isdigit(static_cast<unsigned char>(Cursor.peek())))
      Cursor.advance();
    std::string_view Text = Cursor.slice(Begin, Cursor.offset());
    Tok.Kind = TokKind::Integer;
    auto [Ptr, Ec] =
        std::from_chars(Text.data(), Text.data() + Text.size(), Tok.IntValue);
    if (Ec != std::errc() || Ptr != Text.data() + Text.size()) {
      Diags.error(Tok.Loc, "integer literal out of range");
      Tok.Kind = TokKind::Error;
    }
    return Tok;
  }

  Token lexString() {
    Token Tok;
    Tok.Loc = Cursor.location();
    Cursor.advance(); // Opening quote.
    std::string Out;
    while (true) {
      if (Cursor.atEnd() || Cursor.peek() == '\n') {
        Diags.error(Tok.Loc, "unterminated string literal");
        Tok.Kind = TokKind::Error;
        return Tok;
      }
      char C = Cursor.advance();
      if (C == '"')
        break;
      if (C == '\\') {
        char Esc = Cursor.advance();
        switch (Esc) {
        case 'n':
          Out.push_back('\n');
          break;
        case 't':
          Out.push_back('\t');
          break;
        case '"':
        case '\\':
          Out.push_back(Esc);
          break;
        default:
          Diags.error(Cursor.location(),
                      std::string("unknown escape sequence '\\") + Esc + "'");
          break;
        }
        continue;
      }
      Out.push_back(C);
    }
    Tok.Kind = TokKind::String;
    Tok.StrValue = std::move(Out);
    return Tok;
  }

  CharCursor Cursor;
  DiagnosticEngine &Diags;
};

/// Recursive-descent parser over the token stream. Recovers at line ends.
class TraceParser {
public:
  TraceParser(std::string_view Text, DiagnosticEngine &Diags)
      : Lexer(Text, Diags), Diags(Diags) {
    Tok = Lexer.next();
  }

  Trace run() {
    Trace Result;
    while (Tok.Kind != TokKind::Eof) {
      if (Tok.Kind == TokKind::Newline) {
        consume();
        continue;
      }
      if (auto E = parseLine())
        Result.append(std::move(*E));
      else
        skipToLineEnd();
    }
    return Result;
  }

private:
  void consume() { Tok = Lexer.next(); }

  void skipToLineEnd() {
    while (Tok.Kind != TokKind::Newline && Tok.Kind != TokKind::Eof)
      consume();
  }

  bool expect(TokKind Kind, const char *What) {
    if (Tok.Kind == Kind) {
      consume();
      return true;
    }
    Diags.error(Tok.Loc, std::string("expected ") + What);
    return false;
  }

  /// Parses an id of shape <Prefix><digits>, e.g. T1, o3, L0, V7.
  std::optional<uint32_t> parsePrefixedId(char Prefix, const char *What) {
    if (Tok.Kind != TokKind::Ident || Tok.Text.size() < 2 ||
        (Tok.Text[0] != Prefix &&
         std::tolower(Tok.Text[0]) != std::tolower(Prefix))) {
      Diags.error(Tok.Loc, std::string("expected ") + What);
      return std::nullopt;
    }
    uint32_t Index = 0;
    std::string_view Digits = Tok.Text.substr(1);
    auto [Ptr, Ec] =
        std::from_chars(Digits.data(), Digits.data() + Digits.size(), Index);
    if (Ec != std::errc() || Ptr != Digits.data() + Digits.size()) {
      Diags.error(Tok.Loc, std::string("expected ") + What);
      return std::nullopt;
    }
    consume();
    return Index;
  }

  std::optional<Value> parseValue() {
    switch (Tok.Kind) {
    case TokKind::Integer: {
      Value V = Value::integer(Tok.IntValue);
      consume();
      return V;
    }
    case TokKind::String: {
      Value V = Value::string(Tok.StrValue);
      consume();
      return V;
    }
    case TokKind::Ident: {
      std::optional<Value> V;
      if (Tok.Text == "nil")
        V = Value::nil();
      else if (Tok.Text == "true")
        V = Value::boolean(true);
      else if (Tok.Text == "false")
        V = Value::boolean(false);
      if (V) {
        consume();
        return V;
      }
      break;
    }
    default:
      break;
    }
    Diags.error(Tok.Loc, "expected value (integer, string, nil, true, false)");
    return std::nullopt;
  }

  std::optional<Event> parseLine() {
    auto Thread = parsePrefixedId('T', "thread id like T1");
    if (!Thread)
      return std::nullopt;
    ThreadId Self(*Thread);
    if (!expect(TokKind::Colon, "':' after thread id"))
      return std::nullopt;

    if (Tok.Kind != TokKind::Ident) {
      Diags.error(Tok.Loc, "expected statement keyword or object id");
      return std::nullopt;
    }

    std::string_view Keyword = Tok.Text;
    if (Keyword == "fork" || Keyword == "join") {
      consume();
      auto Target = parsePrefixedId('T', "thread id like T2");
      if (!Target)
        return std::nullopt;
      return Keyword == "fork" ? Event::fork(Self, ThreadId(*Target))
                               : Event::join(Self, ThreadId(*Target));
    }
    if (Keyword == "acq" || Keyword == "rel") {
      consume();
      auto Lock = parsePrefixedId('L', "lock id like L0");
      if (!Lock)
        return std::nullopt;
      return Keyword == "acq" ? Event::acquire(Self, LockId(*Lock))
                              : Event::release(Self, LockId(*Lock));
    }
    if (Keyword == "txbegin") {
      consume();
      return Event::txBegin(Self);
    }
    if (Keyword == "txend") {
      consume();
      return Event::txEnd(Self);
    }
    if (Keyword == "read" || Keyword == "write") {
      consume();
      auto Var = parsePrefixedId('V', "memory location id like V3");
      if (!Var)
        return std::nullopt;
      return Keyword == "read" ? Event::read(Self, VarId(*Var))
                               : Event::write(Self, VarId(*Var));
    }
    return parseInvoke(Self);
  }

  std::optional<Event> parseInvoke(ThreadId Self) {
    auto Obj = parsePrefixedId('o', "object id like o1");
    if (!Obj)
      return std::nullopt;
    if (!expect(TokKind::Dot, "'.' after object id"))
      return std::nullopt;
    if (Tok.Kind != TokKind::Ident) {
      Diags.error(Tok.Loc, "expected method name");
      return std::nullopt;
    }
    Symbol Method = symbol(Tok.Text);
    consume();
    if (!expect(TokKind::LParen, "'(' after method name"))
      return std::nullopt;

    std::vector<Value> Args;
    if (Tok.Kind != TokKind::RParen) {
      do {
        auto V = parseValue();
        if (!V)
          return std::nullopt;
        Args.push_back(*V);
      } while (Tok.Kind == TokKind::Comma && (consume(), true));
    }
    if (!expect(TokKind::RParen, "')' after arguments"))
      return std::nullopt;

    std::vector<Value> Rets;
    while (Tok.Kind == TokKind::Slash) {
      consume();
      auto V = parseValue();
      if (!V)
        return std::nullopt;
      Rets.push_back(*V);
    }

    if (Tok.Kind != TokKind::Newline && Tok.Kind != TokKind::Eof) {
      Diags.error(Tok.Loc, "expected end of line after action");
      return std::nullopt;
    }
    return Event::invoke(
        Self, Action(ObjectId(*Obj), Method, std::move(Args), std::move(Rets)));
  }

  TraceLexer Lexer;
  DiagnosticEngine &Diags;
  Token Tok;
};

} // namespace

std::optional<Trace> crd::parseTrace(std::string_view Text,
                                     DiagnosticEngine &Diags) {
  TraceParser Parser(Text, Diags);
  Trace Result = Parser.run();
  if (Diags.hasErrors())
    return std::nullopt;
  return Result;
}

std::optional<Event> crd::parseTraceLine(std::string_view Line, uint32_t LineNo,
                                         DiagnosticEngine &Diags) {
  // Parse against a local engine, then re-emit with the caller's line
  // number: the parser believes every buffer starts at line 1.
  DiagnosticEngine Local;
  TraceParser Parser(Line, Local);
  Trace Result = Parser.run();
  for (const Diagnostic &D : Local.all()) {
    SourceLocation Loc = D.Loc;
    if (Loc.isValid())
      Loc.Line += LineNo - 1;
    switch (D.Level) {
    case Diagnostic::Severity::Error:
      Diags.error(Loc, D.Message);
      break;
    case Diagnostic::Severity::Warning:
      Diags.warning(Loc, D.Message);
      break;
    case Diagnostic::Severity::Note:
      Diags.note(Loc, D.Message);
      break;
    }
  }
  if (Local.hasErrors() || Result.empty())
    return std::nullopt;
  return Result[0];
}
