//===- trace/Trace.cpp - Execution traces ----------------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace crd;

uint32_t Trace::numThreads() const {
  uint32_t Max = 0;
  for (const Event &E : Events) {
    Max = std::max(Max, E.thread().index() + 1);
    if (E.kind() == EventKind::Fork || E.kind() == EventKind::Join)
      Max = std::max(Max, E.other().index() + 1);
  }
  return Max;
}

bool Trace::validate(DiagnosticEngine &Diags) const {
  std::unordered_set<ThreadId> Seen;     // Threads that performed any event.
  std::unordered_set<ThreadId> Forked;   // Threads created by a fork.
  std::unordered_set<ThreadId> Joined;   // Threads already joined.
  std::unordered_map<LockId, ThreadId> Held;
  std::unordered_set<ThreadId> InTx;

  size_t Position = 0;
  for (const Event &E : Events) {
    ++Position;
    SourceLocation Loc{static_cast<uint32_t>(Position), 1};
    ThreadId Self = E.thread();

    if (Joined.count(Self))
      Diags.error(Loc, "thread T" + std::to_string(Self.index()) +
                           " performs an event after being joined");

    switch (E.kind()) {
    case EventKind::Fork: {
      ThreadId Child = E.other();
      if (Child == Self)
        Diags.error(Loc, "thread T" + std::to_string(Self.index()) +
                             " forks itself");
      else if (Seen.count(Child) || Forked.count(Child))
        Diags.error(Loc, "forked thread T" + std::to_string(Child.index()) +
                             " already exists");
      Forked.insert(Child);
      break;
    }
    case EventKind::Join: {
      ThreadId Child = E.other();
      if (Child == Self)
        Diags.error(Loc, "thread T" + std::to_string(Self.index()) +
                             " joins itself");
      else if (!Forked.count(Child) && !Seen.count(Child))
        Diags.error(Loc, "joined thread T" + std::to_string(Child.index()) +
                             " was never created");
      else if (!Joined.insert(Child).second)
        Diags.error(Loc, "thread T" + std::to_string(Child.index()) +
                             " is joined twice");
      break;
    }
    case EventKind::Acquire: {
      auto It = Held.find(E.lock());
      if (It != Held.end())
        Diags.error(Loc, "lock L" + std::to_string(E.lock().index()) +
                             " acquired while held by T" +
                             std::to_string(It->second.index()));
      else
        Held.emplace(E.lock(), Self);
      break;
    }
    case EventKind::Release: {
      auto It = Held.find(E.lock());
      if (It == Held.end())
        Diags.error(Loc, "lock L" + std::to_string(E.lock().index()) +
                             " released while not held");
      else if (It->second != Self)
        Diags.error(Loc, "lock L" + std::to_string(E.lock().index()) +
                             " released by T" + std::to_string(Self.index()) +
                             " but held by T" +
                             std::to_string(It->second.index()));
      else
        Held.erase(It);
      break;
    }
    case EventKind::TxBegin:
      if (!InTx.insert(Self).second)
        Diags.error(Loc, "thread T" + std::to_string(Self.index()) +
                             " opens a nested atomic block");
      break;
    case EventKind::TxEnd:
      if (!InTx.erase(Self))
        Diags.error(Loc, "thread T" + std::to_string(Self.index()) +
                             " closes an atomic block it never opened");
      break;
    case EventKind::Invoke:
    case EventKind::Read:
    case EventKind::Write:
      break;
    }

    Seen.insert(Self);
  }
  return !Diags.hasErrors();
}

std::ostream &crd::operator<<(std::ostream &OS, const Trace &T) {
  for (const Event &E : T)
    OS << E << '\n';
  return OS;
}
