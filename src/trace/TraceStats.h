//===- trace/TraceStats.h - execution trace statistics ----------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics of an execution trace: event-kind histogram,
/// per-object action counts, per-method counts, thread/lock/location
/// population. Used by the offline analyzer for its header line and by
/// tests to characterize workloads.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRACE_TRACESTATS_H
#define CRD_TRACE_TRACESTATS_H

#include "trace/Trace.h"

#include <iosfwd>
#include <map>
#include <string>

namespace crd {

/// Aggregated counts over one trace.
struct TraceStats {
  size_t Events = 0;
  size_t Actions = 0;
  size_t MemoryAccesses = 0;
  size_t SyncEvents = 0;
  size_t TxEvents = 0;
  size_t Threads = 0;
  size_t Locks = 0;
  size_t MemoryLocations = 0;
  size_t Objects = 0;
  std::map<ObjectId, size_t> ActionsPerObject;
  std::map<Symbol, size_t> ActionsPerMethod;

  /// Computes the statistics of \p T.
  static TraceStats compute(const Trace &T);

  /// Renders a compact multi-line report.
  void print(std::ostream &OS) const;
  std::string toString() const;
};

} // namespace crd

#endif // CRD_TRACE_TRACESTATS_H
