//===- trace/TraceIO.h - Trace text format ----------------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for traces, so recorded executions can be
/// stored, diffed and replayed through the detectors offline. One event per
/// line; `#` starts a comment. Example:
///
/// \code
///   # Fig. 3 of the paper
///   T0: fork T2
///   T2: o1.put("a.com", 1)/nil
///   T0: join T2
///   T0: o1.size()/1
///   T0: acq L0
///   T0: read V7
///   T0: rel L0
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRACE_TRACEIO_H
#define CRD_TRACE_TRACEIO_H

#include "support/Diagnostics.h"
#include "trace/Trace.h"

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace crd {

/// Serializes \p T in the textual trace format (one event per line).
void writeTrace(std::ostream &OS, const Trace &T);

/// Serializes \p T to a string.
std::string traceToString(const Trace &T);

/// Parses the textual trace format.
///
/// \returns the trace on success; std::nullopt when \p Diags received at
/// least one error. The parser recovers per line, so a single malformed line
/// yields one diagnostic rather than aborting the whole parse.
std::optional<Trace> parseTrace(std::string_view Text, DiagnosticEngine &Diags);

/// Parses one line of the textual format (the streaming-ingestion entry
/// point: no whole-file buffer, no Trace).
///
/// \returns the event, or std::nullopt for blank/comment lines and for
/// malformed lines (malformed iff \p Diags received an error). Diagnostic
/// locations are reported against \p LineNo.
std::optional<Event> parseTraceLine(std::string_view Line, uint32_t LineNo,
                                    DiagnosticEngine &Diags);

} // namespace crd

#endif // CRD_TRACE_TRACEIO_H
