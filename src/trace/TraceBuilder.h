//===- trace/TraceBuilder.h - Fluent trace construction ---------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fluent builder for constructing traces in tests and examples:
///
/// \code
///   Trace T = TraceBuilder()
///                 .fork(0, 1)
///                 .invoke(1, 5, "put", {Value::string("a.com")}, Value::nil())
///                 .join(0, 1)
///                 .take();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRACE_TRACEBUILDER_H
#define CRD_TRACE_TRACEBUILDER_H

#include "trace/Trace.h"

#include <string_view>
#include <utility>
#include <vector>

namespace crd {

/// Builds a Trace event by event. All ids are raw indices for brevity.
class TraceBuilder {
public:
  TraceBuilder &fork(uint32_t Thread, uint32_t Child) {
    T.append(Event::fork(ThreadId(Thread), ThreadId(Child)));
    return *this;
  }
  TraceBuilder &join(uint32_t Thread, uint32_t Child) {
    T.append(Event::join(ThreadId(Thread), ThreadId(Child)));
    return *this;
  }
  TraceBuilder &acquire(uint32_t Thread, uint32_t Lock) {
    T.append(Event::acquire(ThreadId(Thread), LockId(Lock)));
    return *this;
  }
  TraceBuilder &release(uint32_t Thread, uint32_t Lock) {
    T.append(Event::release(ThreadId(Thread), LockId(Lock)));
    return *this;
  }
  TraceBuilder &read(uint32_t Thread, uint32_t Var) {
    T.append(Event::read(ThreadId(Thread), VarId(Var)));
    return *this;
  }
  TraceBuilder &write(uint32_t Thread, uint32_t Var) {
    T.append(Event::write(ThreadId(Thread), VarId(Var)));
    return *this;
  }
  TraceBuilder &txBegin(uint32_t Thread) {
    T.append(Event::txBegin(ThreadId(Thread)));
    return *this;
  }
  TraceBuilder &txEnd(uint32_t Thread) {
    T.append(Event::txEnd(ThreadId(Thread)));
    return *this;
  }

  /// Appends an action event with a single return value.
  TraceBuilder &invoke(uint32_t Thread, uint32_t Obj, std::string_view Method,
                       std::vector<Value> Args, Value Ret) {
    T.append(Event::invoke(
        ThreadId(Thread),
        Action(ObjectId(Obj), symbol(Method), std::move(Args), Ret)));
    return *this;
  }

  /// Appends an action event with an explicit return tuple.
  TraceBuilder &invoke(uint32_t Thread, uint32_t Obj, std::string_view Method,
                       std::vector<Value> Args, std::vector<Value> Rets) {
    T.append(Event::invoke(ThreadId(Thread),
                           Action(ObjectId(Obj), symbol(Method),
                                  std::move(Args), std::move(Rets))));
    return *this;
  }

  /// Moves the built trace out of the builder.
  Trace take() { return std::move(T); }

private:
  Trace T;
};

} // namespace crd

#endif // CRD_TRACE_TRACEBUILDER_H
