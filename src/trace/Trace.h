//===- trace/Trace.h - Execution traces (paper §3.1) ------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Traces: sequences of events ordered by position (the ≤π order of §3.1),
/// plus structural validation (forked threads are fresh, joined threads
/// exist, locks are held by the releasing thread, ...).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRACE_TRACE_H
#define CRD_TRACE_TRACE_H

#include "support/Diagnostics.h"
#include "trace/Event.h"

#include <iosfwd>
#include <vector>

namespace crd {

/// A finite trace π = e1 e2 ... en.
///
/// Event indices (0-based) serve as event identities; ei ≤π ej iff i ≤ j.
class Trace {
public:
  Trace() = default;
  explicit Trace(std::vector<Event> Events) : Events(std::move(Events)) {}

  void append(Event E) { Events.push_back(std::move(E)); }

  const std::vector<Event> &events() const { return Events; }
  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }
  const Event &operator[](size_t I) const { return Events[I]; }

  std::vector<Event>::const_iterator begin() const { return Events.begin(); }
  std::vector<Event>::const_iterator end() const { return Events.end(); }

  /// Largest thread index mentioned plus one (0 for the empty trace).
  uint32_t numThreads() const;

  /// Checks well-formedness and reports problems into \p Diags:
  ///   * a forked thread must not have appeared before the fork,
  ///   * a joined thread must have been forked (or be an initial thread)
  ///     and must perform no events after the join,
  ///   * a thread must not fork/join itself,
  ///   * a released lock must be held by the releasing thread, and locks
  ///     are not re-entrant across threads.
  /// Returns true when no errors were found.
  bool validate(DiagnosticEngine &Diags) const;

private:
  std::vector<Event> Events;
};

std::ostream &operator<<(std::ostream &OS, const Trace &T);

} // namespace crd

#endif // CRD_TRACE_TRACE_H
