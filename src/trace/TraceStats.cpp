//===- trace/TraceStats.cpp - execution trace statistics -----------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceStats.h"

#include <ostream>
#include <set>
#include <sstream>

using namespace crd;

TraceStats TraceStats::compute(const Trace &T) {
  TraceStats Stats;
  Stats.Events = T.size();

  std::set<ThreadId> Threads;
  std::set<LockId> Locks;
  std::set<VarId> Vars;
  for (const Event &E : T) {
    Threads.insert(E.thread());
    switch (E.kind()) {
    case EventKind::Fork:
    case EventKind::Join:
      Threads.insert(E.other());
      ++Stats.SyncEvents;
      break;
    case EventKind::Acquire:
    case EventKind::Release:
      Locks.insert(E.lock());
      ++Stats.SyncEvents;
      break;
    case EventKind::Invoke: {
      ++Stats.Actions;
      const Action &A = E.action();
      ++Stats.ActionsPerObject[A.object()];
      ++Stats.ActionsPerMethod[A.method()];
      break;
    }
    case EventKind::Read:
    case EventKind::Write:
      ++Stats.MemoryAccesses;
      Vars.insert(E.var());
      break;
    case EventKind::TxBegin:
    case EventKind::TxEnd:
      ++Stats.TxEvents;
      break;
    }
  }
  Stats.Threads = Threads.size();
  Stats.Locks = Locks.size();
  Stats.MemoryLocations = Vars.size();
  Stats.Objects = Stats.ActionsPerObject.size();
  return Stats;
}

void TraceStats::print(std::ostream &OS) const {
  OS << Events << " events: " << Actions << " actions on " << Objects
     << " object(s), " << MemoryAccesses << " memory accesses on "
     << MemoryLocations << " location(s), " << SyncEvents
     << " sync event(s), " << TxEvents << " tx marker(s); " << Threads
     << " thread(s), " << Locks << " lock(s)\n";
  if (!ActionsPerMethod.empty()) {
    OS << "  actions by method:";
    for (const auto &[Method, Count] : ActionsPerMethod)
      OS << "  " << Method.str() << " x" << Count;
    OS << '\n';
  }
}

std::string TraceStats::toString() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
