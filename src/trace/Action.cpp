//===- trace/Action.cpp - Method invocations ------------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "trace/Action.h"

#include <ostream>
#include <sstream>

using namespace crd;

std::vector<Value> Action::values() const {
  return std::vector<Value>(Vals, Vals + numValues());
}

std::string Action::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const Action &A) {
  OS << 'o' << A.object().index() << '.' << A.method().str() << '(';
  for (size_t I = 0, E = A.args().size(); I != E; ++I) {
    if (I != 0)
      OS << ", ";
    OS << A.args()[I];
  }
  OS << ')';
  for (const Value &Ret : A.rets())
    OS << '/' << Ret;
  return OS;
}
