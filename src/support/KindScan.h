//===- support/KindScan.h - SIMD scan over event-kind bytes -----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vectorized scan for "interesting" kind bytes in a contiguous array —
/// the sync-event index of the run-based shard pipeline. The parallel
/// detector's pre-pass only needs to know *where* the synchronization
/// events sit inside a batch; everything between two of them is a run the
/// clock machine can skip wholesale. The trace layer encodes kinds so the
/// sync kinds (fork/join/acquire/release) are exactly the bytes below a
/// small threshold, which turns the scan into one signed byte-compare.
///
/// Mirrors the FlatMap swiss-table pattern: an SSE2 group-of-16 path
/// (compare + movemask, one load per 16 kinds) selected at compile time,
/// with a scalar fallback that computes bit-identical output and is always
/// compiled so the two can be differentially tested on any host
/// (tests/KindScanTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_KINDSCAN_H
#define CRD_SUPPORT_KINDSCAN_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__SSE2__) && !defined(CRD_DISABLE_SIMD)
#include <emmintrin.h>
#define CRD_KINDSCAN_HAVE_SSE2 1
#endif

namespace crd {

/// Appends `Base + i` to \p Out for every i in [0, N) with Kinds[i] <
/// \p Below, in increasing order. Portable reference implementation; the
/// SIMD path below must produce byte-identical output.
/// \pre every kind byte is < 128 (the compare is signed).
inline void appendKindPositionsScalar(const uint8_t *Kinds, size_t N,
                                      uint8_t Below, uint32_t Base,
                                      std::vector<uint32_t> &Out) {
  for (size_t I = 0; I != N; ++I)
    if (Kinds[I] < Below)
      Out.push_back(Base + static_cast<uint32_t>(I));
}

#ifdef CRD_KINDSCAN_HAVE_SSE2

/// SSE2 scan: one unaligned load, one signed byte-compare against the
/// threshold, one movemask per 16 kinds; set bits are drained in index
/// order so the output matches the scalar scan exactly. The tail shorter
/// than a group falls back to the scalar loop.
inline void appendKindPositions(const uint8_t *Kinds, size_t N, uint8_t Below,
                                uint32_t Base, std::vector<uint32_t> &Out) {
  const __m128i Limit = _mm_set1_epi8(static_cast<char>(Below));
  size_t I = 0;
  for (; I + 16 <= N; I += 16) {
    __m128i Group = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(Kinds + I));
    // Signed compare is safe: kind bytes stay far below 128.
    uint32_t Mask = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmplt_epi8(Group, Limit)));
    while (Mask != 0) {
      unsigned Bit = static_cast<unsigned>(std::countr_zero(Mask));
      Out.push_back(Base + static_cast<uint32_t>(I) + Bit);
      Mask &= Mask - 1;
    }
  }
  appendKindPositionsScalar(Kinds + I, N - I, Below,
                            Base + static_cast<uint32_t>(I), Out);
}

#else

inline void appendKindPositions(const uint8_t *Kinds, size_t N, uint8_t Below,
                                uint32_t Base, std::vector<uint32_t> &Out) {
  appendKindPositionsScalar(Kinds, N, Below, Base, Out);
}

#endif // CRD_KINDSCAN_HAVE_SSE2

} // namespace crd

#endif // CRD_SUPPORT_KINDSCAN_H
