//===- support/VectorClock.cpp - Vector clocks ----------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "support/VectorClock.h"

#include <algorithm>
#include <ostream>
#include <sstream>

using namespace crd;

void VectorClock::normalize() {
  while (!Components.empty() && Components.back() == 0)
    Components.pop_back();
}

void VectorClock::set(ThreadId Thread, uint32_t Time) {
  if (Thread.index() >= Components.size()) {
    if (Time == 0)
      return;
    Components.resize(Thread.index() + 1);
  }
  Components[Thread.index()] = Time;
  normalize();
}

void VectorClock::increment(ThreadId Thread) {
  if (Thread.index() >= Components.size())
    Components.resize(Thread.index() + 1);
  ++Components[Thread.index()];
}

bool VectorClock::joinWith(const VectorClock &Other) {
  bool Changed = false;
  if (Other.Components.size() > Components.size()) {
    Components.resize(Other.Components.size());
    Changed = true; // Other is normalized, so its last component is > 0.
  }
  for (size_t I = 0, E = Other.Components.size(); I != E; ++I)
    if (Other.Components[I] > Components[I]) {
      Components[I] = Other.Components[I];
      Changed = true;
    }
  // Join never introduces trailing zeros if neither operand had them, so no
  // normalize() is needed; both operands are kept normalized.
  return Changed;
}

VectorClock VectorClock::join(const VectorClock &A, const VectorClock &B) {
  VectorClock Result = A;
  Result.joinWith(B);
  return Result;
}

bool VectorClock::leq(const VectorClock &Other) const {
  if (Components.size() > Other.Components.size())
    return false; // Some component here is nonzero past Other's extent.
  for (size_t I = 0, E = Components.size(); I != E; ++I)
    if (Components[I] > Other.Components[I])
      return false;
  return true;
}

std::string VectorClock::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const VectorClock &VC) {
  OS << '<';
  for (size_t I = 0, E = VC.size(); I != E; ++I) {
    if (I != 0)
      OS << ',';
    OS << VC.get(ThreadId(static_cast<uint32_t>(I)));
  }
  return OS << '>';
}
