//===- support/VectorClock.cpp - Vector clocks ----------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "support/VectorClock.h"

#include <algorithm>
#include <ostream>
#include <sstream>

using namespace crd;

void VectorClock::normalize() {
  while (!Components.empty() && Components.back() == 0)
    Components.pop_back();
}

void VectorClock::set(ThreadId Thread, uint32_t Time) {
  if (Thread.index() >= Components.size()) {
    if (Time == 0)
      return;
    Components.resize(Thread.index() + 1);
  }
  Components[Thread.index()] = Time;
  normalize();
}

void VectorClock::increment(ThreadId Thread) {
  if (Thread.index() >= Components.size())
    Components.resize(Thread.index() + 1);
  ++Components[Thread.index()];
}

VectorClock VectorClock::join(const VectorClock &A, const VectorClock &B) {
  VectorClock Result = A;
  Result.joinWith(B);
  return Result;
}

std::string VectorClock::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const VectorClock &VC) {
  OS << '<';
  for (size_t I = 0, E = VC.size(); I != E; ++I) {
    if (I != 0)
      OS << ',';
    OS << VC.get(ThreadId(static_cast<uint32_t>(I)));
  }
  return OS << '>';
}
