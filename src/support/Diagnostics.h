//===- support/Diagnostics.h - Parser/analysis diagnostics ------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostics shared by the trace parser and the ECL specification parser.
/// Following the LLVM error-message style, messages start lowercase and do
/// not end with a period.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_DIAGNOSTICS_H
#define CRD_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace crd {

/// A 1-based line/column position within a source buffer.
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }

  friend bool operator==(SourceLocation A, SourceLocation B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

/// One reported problem.
struct Diagnostic {
  enum class Severity { Error, Warning, Note };

  Severity Level = Severity::Error;
  SourceLocation Loc;
  std::string Message;

  /// Renders as "line:col: error: message" (or without location when the
  /// diagnostic has none).
  std::string toString() const;
};

/// Collects diagnostics produced while parsing or analyzing an input.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message);
  void warning(SourceLocation Loc, std::string Message);
  void note(SourceLocation Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  size_t errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }
  bool empty() const { return Diags.empty(); }

  /// Renders every diagnostic, one per line.
  std::string toString() const;

private:
  std::vector<Diagnostic> Diags;
  size_t NumErrors = 0;
};

std::ostream &operator<<(std::ostream &OS, const Diagnostic &D);

} // namespace crd

#endif // CRD_SUPPORT_DIAGNOSTICS_H
