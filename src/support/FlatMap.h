//===- support/FlatMap.h - Open-addressing hash map -------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A robin-hood open-addressing hash map for the detector hot path. The
/// per-event cost of Algorithm 1 is dominated by table probes — the object
/// table, the bindings table, and each object's active-point table — and
/// node-based std::unordered_map turns every probe into a pointer chase.
/// FlatMap stores entries inline in one contiguous slot array with a
/// parallel byte array of probe distances, so the common hit touches two
/// adjacent cache lines and misses terminate after a single comparison
/// against the resident distance.
///
/// Design points:
///   * power-of-two capacity; the index is hashMix64(Hash(K)) & Mask, so
///     id-like keys (raw indices) still spread over all slots;
///   * robin-hood insertion: a displaced entry resumes probing with its own
///     distance, keeping probe-length variance minimal;
///   * tombstone-free erase via backward shift: subsequent entries slide one
///     slot back, so deletions never degrade future probes and a long-lived
///     table needs no periodic rehash;
///   * distances are stored +1 in a uint8_t (0 = empty); an insertion whose
///     probe distance would overflow the byte forces a grow, which the
///     0.75 max load factor makes effectively unreachable.
///
/// References and value pointers are invalidated by any insertion (rehash
/// moves the whole table; robin-hood displacement can move individual
/// entries even without one — unlike std::unordered_map); callers that
/// cache pointers across insertions must hold values behind unique_ptr.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_FLATMAP_H
#define CRD_SUPPORT_FLATMAP_H

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace crd {

template <typename KeyT, typename ValueT, typename HashT = std::hash<KeyT>>
class FlatMap {
public:
  using value_type = std::pair<KeyT, ValueT>;

  FlatMap() = default;

  /// Grows so \p N entries fit without rehashing.
  void reserve(size_t N) {
    size_t Needed = capacityFor(N);
    if (Needed > Slots.size())
      rehash(Needed);
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return Slots.size(); }

  void clear() {
    std::fill(Dist.begin(), Dist.end(), uint8_t{0});
    for (value_type &Slot : Slots)
      Slot = value_type();
    Count = 0;
  }

  /// Returns the value mapped to \p K, or nullptr when absent.
  ValueT *find(const KeyT &K) {
    return const_cast<ValueT *>(std::as_const(*this).find(K));
  }
  const ValueT *find(const KeyT &K) const {
    if (Count == 0)
      return nullptr;
    size_t Mask = Slots.size() - 1;
    size_t I = indexOf(K);
    for (uint8_t D = 1;; ++D, I = (I + 1) & Mask) {
      uint8_t Resident = Dist[I];
      if (Resident < D)
        return nullptr; // An entry with our hash would have displaced it.
      if (Resident == D && Slots[I].first == K)
        return &Slots[I].second;
    }
  }

  bool contains(const KeyT &K) const { return find(K) != nullptr; }

  /// Inserts a default-constructed value for \p K unless present. Returns
  /// the value slot and whether an insertion happened.
  std::pair<ValueT *, bool> tryEmplace(const KeyT &K) {
    if (ValueT *Existing = find(K))
      return {Existing, false};
    if ((Count + 1) * 4 > Slots.size() * 3)
      rehash(Slots.empty() ? MinCapacity : Slots.size() * 2);
    return {&insertFresh(value_type(K, ValueT())), true};
  }

  ValueT &operator[](const KeyT &K) { return *tryEmplace(K).first; }

  /// Erases \p K; returns whether it was present. Backward-shifts the
  /// following probe chain so no tombstone is left behind.
  bool erase(const KeyT &K) {
    if (Count == 0)
      return false;
    size_t Mask = Slots.size() - 1;
    size_t I = indexOf(K);
    uint8_t D = 1;
    for (;; ++D, I = (I + 1) & Mask) {
      uint8_t Resident = Dist[I];
      if (Resident < D)
        return false;
      if (Resident == D && Slots[I].first == K)
        break;
    }
    for (;;) {
      size_t J = (I + 1) & Mask;
      if (Dist[J] <= 1) // Empty or already home: chain ends here.
        break;
      Slots[I] = std::move(Slots[J]);
      Dist[I] = Dist[J] - 1;
      I = J;
    }
    Slots[I] = value_type();
    Dist[I] = 0;
    --Count;
    return true;
  }

  /// Forward iteration over occupied slots; order unspecified. Stable under
  /// erase of already-visited keys, invalidated by insertion (rehash).
  template <bool Const> class IteratorImpl {
    using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type &, value_type &>;

  public:
    IteratorImpl(MapT *M, size_t I) : M(M), I(I) { skipEmpty(); }

    Ref operator*() const { return M->Slots[I]; }
    auto *operator->() const { return &M->Slots[I]; }
    IteratorImpl &operator++() {
      ++I;
      skipEmpty();
      return *this;
    }
    friend bool operator==(const IteratorImpl &A, const IteratorImpl &B) {
      return A.I == B.I;
    }

  private:
    void skipEmpty() {
      while (I != M->Slots.size() && M->Dist[I] == 0)
        ++I;
    }
    MapT *M;
    size_t I;
  };
  using iterator = IteratorImpl<false>;
  using const_iterator = IteratorImpl<true>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, Slots.size()}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, Slots.size()}; }

private:
  static constexpr size_t MinCapacity = 16;

  static size_t capacityFor(size_t N) {
    size_t Cap = MinCapacity;
    while (N * 4 > Cap * 3)
      Cap *= 2;
    return Cap;
  }

  size_t indexOf(const KeyT &K) const {
    return hashMix64(static_cast<uint64_t>(HashT{}(K))) & (Slots.size() - 1);
  }

  /// Robin-hood insert of a key known to be absent, with capacity already
  /// ensured. Returns the value slot where the *new* key landed (which is
  /// fixed once it is first written, even if later residents get displaced
  /// further down the chain).
  ValueT &insertFresh(value_type &&Pending) {
    size_t Mask = Slots.size() - 1;
    size_t I = indexOf(Pending.first);
    uint8_t PendingDist = 1;
    value_type *Placed = nullptr;
    for (;; I = (I + 1) & Mask) {
      if (Dist[I] == 0) {
        Slots[I] = std::move(Pending);
        Dist[I] = PendingDist;
        ++Count;
        return Placed ? Placed->second : Slots[I].second;
      }
      if (Dist[I] < PendingDist) {
        std::swap(Slots[I], Pending);
        std::swap(Dist[I], PendingDist);
        if (!Placed)
          Placed = &Slots[I];
      }
      if (PendingDist == UINT8_MAX) {
        // Probe chain hit the distance-byte ceiling — not reachable at 0.75
        // max load (robin-hood chains are O(log n) whp), but kept
        // well-defined: grow, fold the in-flight entry back in, relocate.
        KeyT NewKey = Placed ? Placed->first : Pending.first;
        std::vector<value_type> OldSlots = std::move(Slots);
        std::vector<uint8_t> OldDist = std::move(Dist);
        Slots = std::vector<value_type>(OldSlots.size() * 2);
        Dist.assign(OldSlots.size() * 2, 0);
        Count = 0;
        for (size_t J = 0; J != OldSlots.size(); ++J)
          if (OldDist[J])
            insertFresh(std::move(OldSlots[J]));
        insertFresh(std::move(Pending));
        return *find(NewKey);
      }
      ++PendingDist;
    }
  }

  void rehash(size_t NewCap) {
    std::vector<value_type> OldSlots = std::move(Slots);
    std::vector<uint8_t> OldDist = std::move(Dist);
    Slots = std::vector<value_type>(NewCap);
    Dist.assign(NewCap, 0);
    Count = 0;
    for (size_t I = 0; I != OldSlots.size(); ++I)
      if (OldDist[I])
        insertFresh(std::move(OldSlots[I]));
  }

  std::vector<value_type> Slots;
  std::vector<uint8_t> Dist; ///< probe distance + 1; 0 = empty slot.
  size_t Count = 0;
};

} // namespace crd

#endif // CRD_SUPPORT_FLATMAP_H
