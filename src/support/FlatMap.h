//===- support/FlatMap.h - Swiss-table hash map -----------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A swiss-table open-addressing hash map for the detector hot path. The
/// per-event cost of Algorithm 1 is dominated by table probes — the object
/// table, the bindings table, each object's active-point table, and (since
/// the Table 1 rework) the lock-clock table — and node-based
/// std::unordered_map turns every probe into a pointer chase. FlatMap keeps
/// entries inline in one contiguous slot array with a parallel control-byte
/// array, so a probe touches the control bytes first and only visits slots
/// whose 7-bit hash fragment already matches.
///
/// Layout (the swiss-table trick, after Abseil's raw_hash_set):
///   * one control byte per slot: 0b1000'0000 = empty, 0b1111'1110 =
///     tombstone, 0b0hhh'hhhh = occupied by a key whose hash fragment
///     (top 7 bits of the mixed hash) is hhhhhhh;
///   * probing compares GroupWidth = 16 control bytes per step — a single
///     SSE2 _mm_cmpeq_epi8/_mm_movemask_epi8 pair when available, a
///     portable scalar loop otherwise (selected at compile time; both are
///     always compiled so tests can diff them);
///   * the control array carries GroupWidth cloned bytes past the end that
///     mirror the first GroupWidth entries, so group loads never wrap;
///   * probe windows advance by triangular strides (16, 48, 96, ...); with
///     a power-of-two capacity the sequence visits every window, and the
///     invariant "at least one empty byte exists" (enforced by the 7/8 max
///     load factor) guarantees termination;
///   * erase marks a tombstone only when the slot's neighborhood was ever
///     full; otherwise it re-empties the byte directly, so churny
///     insert/erase cycles at moderate load never accrete tombstones. When
///     tombstones do pile up, the table rehashes in place at the same
///     capacity instead of growing.
///
/// Unlike the previous robin-hood layout, entries never move except on
/// rehash, so references are stable under erase and under inserts that do
/// not grow the table; any insertion may still rehash, so callers that
/// cache pointers across insertions must hold values behind unique_ptr.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_FLATMAP_H
#define CRD_SUPPORT_FLATMAP_H

#include "support/Hashing.h"
#include "support/Prefetch.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__SSE2__) && !defined(CRD_DISABLE_SIMD)
#include <emmintrin.h>
#define CRD_FLATMAP_HAVE_SSE2 1
#endif

namespace crd {

namespace flatmap_detail {

/// Control byte values. Occupied slots store the 7-bit hash fragment
/// (0..127); the two specials have the sign bit set so "occupied" is
/// exactly "byte >= 0".
enum Ctrl : int8_t {
  CtrlEmpty = -128,  // 0b1000'0000
  CtrlDeleted = -2,  // 0b1111'1110
};

constexpr size_t GroupWidth = 16;

/// Portable group-of-16 probe: computes the same bitmasks as the SSE2
/// group, one control byte at a time. Kept unconditionally so the SIMD
/// path can be differentially tested against it on any host.
struct GroupScalar {
  const int8_t *P;

  explicit GroupScalar(const int8_t *P) : P(P) {}

  uint32_t match(int8_t Fragment) const {
    uint32_t Mask = 0;
    for (size_t I = 0; I != GroupWidth; ++I)
      Mask |= uint32_t(P[I] == Fragment) << I;
    return Mask;
  }
  uint32_t matchEmpty() const {
    uint32_t Mask = 0;
    for (size_t I = 0; I != GroupWidth; ++I)
      Mask |= uint32_t(P[I] == CtrlEmpty) << I;
    return Mask;
  }
  uint32_t matchEmptyOrDeleted() const {
    uint32_t Mask = 0;
    for (size_t I = 0; I != GroupWidth; ++I)
      Mask |= uint32_t(P[I] < -1) << I; // Empty and deleted are < -1.
    return Mask;
  }
};

#ifdef CRD_FLATMAP_HAVE_SSE2
/// SSE2 group-of-16 probe: one unaligned load, one byte-compare, one
/// movemask per window.
struct GroupSse2 {
  __m128i Ctrl;

  explicit GroupSse2(const int8_t *P)
      : Ctrl(_mm_loadu_si128(reinterpret_cast<const __m128i *>(P))) {}

  uint32_t match(int8_t Fragment) const {
    return static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(_mm_set1_epi8(Fragment), Ctrl)));
  }
  uint32_t matchEmpty() const { return match(CtrlEmpty); }
  uint32_t matchEmptyOrDeleted() const {
    // Signed compare: empty (-128) and deleted (-2) are < -1, fragments
    // (0..127) are not.
    return static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpgt_epi8(_mm_set1_epi8(-1), Ctrl)));
  }
};
using GroupDefault = GroupSse2;
#else
using GroupDefault = GroupScalar;
#endif

} // namespace flatmap_detail

template <typename KeyT, typename ValueT, typename HashT = std::hash<KeyT>>
class FlatMap {
public:
  using value_type = std::pair<KeyT, ValueT>;

  static constexpr size_t GroupWidth = flatmap_detail::GroupWidth;

  FlatMap() = default;

  /// Grows so \p N entries fit without rehashing.
  void reserve(size_t N) {
    size_t Needed = capacityFor(N);
    if (Needed > Slots.size())
      rehash(Needed);
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return Slots.size(); }

  void clear() {
    std::fill(Ctrl.begin(), Ctrl.end(),
              static_cast<int8_t>(flatmap_detail::CtrlEmpty));
    for (value_type &Slot : Slots)
      Slot = value_type();
    Count = 0;
    GrowthLeft = maxLoad(Slots.size());
  }

  /// Returns the value mapped to \p K, or nullptr when absent. Probes 16
  /// control bytes per step (SIMD when available).
  ValueT *find(const KeyT &K) {
    return const_cast<ValueT *>(std::as_const(*this).find(K));
  }
  const ValueT *find(const KeyT &K) const {
    return findImpl<flatmap_detail::GroupDefault>(K);
  }

  /// The portable scalar probe over the same table. Exposed so tests can
  /// check the SIMD and scalar paths agree byte-for-byte; identical to
  /// find() on hosts without SSE2.
  ValueT *findScalar(const KeyT &K) {
    return const_cast<ValueT *>(std::as_const(*this).findScalar(K));
  }
  const ValueT *findScalar(const KeyT &K) const {
    return findImpl<flatmap_detail::GroupScalar>(K);
  }

  bool contains(const KeyT &K) const { return find(K) != nullptr; }

  /// Prefetch hint for an imminent probe: warms the first control-byte
  /// window and the first slot line. The batched detection kernel issues
  /// this from its lookahead stage so the table's storage is in cache by
  /// the time the probe executes. A hint only — results never depend on it.
  void prefetchProbe() const {
    if (Slots.empty())
      return;
    prefetchRead(Ctrl.data());
    prefetchRead(Slots.data());
  }

  /// Inserts a default-constructed value for \p K unless present. Returns
  /// the value slot and whether an insertion happened.
  std::pair<ValueT *, bool> tryEmplace(const KeyT &K) {
    uint64_t H = hashOf(K);
    if (!Slots.empty())
      if (const ValueT *Existing = findHashed<flatmap_detail::GroupDefault>(
              K, H))
        return {const_cast<ValueT *>(Existing), false};
    size_t I = prepareInsert(H);
    Slots[I].first = K;
    return {&Slots[I].second, true};
  }

  ValueT &operator[](const KeyT &K) { return *tryEmplace(K).first; }

  /// Erases \p K; returns whether it was present. Re-empties the control
  /// byte when the surrounding probe window still has empties (so no probe
  /// chain can have crossed this slot); otherwise leaves a tombstone.
  bool erase(const KeyT &K) {
    if (Count == 0)
      return false;
    uint64_t H = hashOf(K);
    size_t Mask = Slots.size() - 1;
    size_t Offset = static_cast<size_t>(H) & Mask;
    size_t Stride = 0;
    int8_t Fragment = fragmentOf(H);
    for (;;) {
      flatmap_detail::GroupDefault G(Ctrl.data() + Offset);
      uint32_t Matches = G.match(Fragment);
      while (Matches) {
        size_t I = (Offset + static_cast<size_t>(std::countr_zero(Matches))) &
                   Mask;
        if (Slots[I].first == K) {
          eraseAt(I);
          return true;
        }
        Matches &= Matches - 1;
      }
      if (G.matchEmpty())
        return false;
      Stride += GroupWidth;
      Offset = (Offset + Stride) & Mask;
      assert(Stride <= Slots.size() && "probe sequence cycled");
    }
  }

  /// Forward iteration over occupied slots; order unspecified. Stable under
  /// erase (entries never move), invalidated by insertion (rehash).
  template <bool Const> class IteratorImpl {
    using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type &, value_type &>;

  public:
    IteratorImpl(MapT *M, size_t I) : M(M), I(I) { skipNonFull(); }

    Ref operator*() const { return M->Slots[I]; }
    auto *operator->() const { return &M->Slots[I]; }
    IteratorImpl &operator++() {
      ++I;
      skipNonFull();
      return *this;
    }
    friend bool operator==(const IteratorImpl &A, const IteratorImpl &B) {
      return A.I == B.I;
    }

  private:
    void skipNonFull() {
      while (I != M->Slots.size() && M->Ctrl[I] < 0)
        ++I;
    }
    MapT *M;
    size_t I;
  };
  using iterator = IteratorImpl<false>;
  using const_iterator = IteratorImpl<true>;

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, Slots.size()}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, Slots.size()}; }

  /// Test/debug hook: checks the control-byte invariants — every occupied
  /// control byte equals its resident key's hash fragment, the cloned tail
  /// mirrors the head, every key is reachable through both probe paths,
  /// and the live count matches. Returns false on any violation.
  bool verifyControlInvariants() const {
    if (Slots.empty())
      return Count == 0;
    size_t Cap = Slots.size();
    size_t Live = 0;
    for (size_t I = 0; I != Cap; ++I) {
      if (Ctrl[I] >= 0) {
        ++Live;
        if (Ctrl[I] != fragmentOf(hashOf(Slots[I].first)))
          return false;
        if (findImpl<flatmap_detail::GroupDefault>(Slots[I].first) !=
            &Slots[I].second)
          return false;
        if (findImpl<flatmap_detail::GroupScalar>(Slots[I].first) !=
            &Slots[I].second)
          return false;
      }
    }
    for (size_t I = 0; I != GroupWidth; ++I)
      if (Ctrl[Cap + I] != Ctrl[I])
        return false;
    return Live == Count;
  }

private:
  static constexpr size_t MinCapacity = 16;
  static_assert(MinCapacity >= flatmap_detail::GroupWidth,
                "a capacity must cover at least one probe window");

  /// Max load factor 7/8: with at least capacity/8 empty control bytes the
  /// probe loop always terminates on matchEmpty.
  static size_t maxLoad(size_t Cap) { return Cap - Cap / 8; }

  static size_t capacityFor(size_t N) {
    size_t Cap = MinCapacity;
    while (N > maxLoad(Cap))
      Cap *= 2;
    return Cap;
  }

  uint64_t hashOf(const KeyT &K) const {
    return hashMix64(static_cast<uint64_t>(HashT{}(K)));
  }

  /// The 7-bit control fragment: top bits of the mixed hash, independent of
  /// the low bits that pick the probe window.
  static int8_t fragmentOf(uint64_t H) {
    return static_cast<int8_t>(H >> 57);
  }

  void setCtrl(size_t I, int8_t V) {
    Ctrl[I] = V;
    if (I < GroupWidth)
      Ctrl[Slots.size() + I] = V; // Keep the cloned tail in sync.
  }

  template <typename GroupT>
  const ValueT *findImpl(const KeyT &K) const {
    if (Count == 0)
      return nullptr;
    return findHashed<GroupT>(K, hashOf(K));
  }

  template <typename GroupT>
  const ValueT *findHashed(const KeyT &K, uint64_t H) const {
    size_t Mask = Slots.size() - 1;
    size_t Offset = static_cast<size_t>(H) & Mask;
    size_t Stride = 0;
    int8_t Fragment = fragmentOf(H);
    for (;;) {
      GroupT G(Ctrl.data() + Offset);
      uint32_t Matches = G.match(Fragment);
      while (Matches) {
        size_t I = (Offset + static_cast<size_t>(std::countr_zero(Matches))) &
                   Mask;
        if (Slots[I].first == K)
          return &Slots[I].second;
        Matches &= Matches - 1;
      }
      if (G.matchEmpty())
        return nullptr;
      Stride += GroupWidth;
      Offset = (Offset + Stride) & Mask;
      assert(Stride <= Slots.size() && "probe sequence cycled");
    }
  }

  /// Finds the slot for a key known to be absent (hash \p H), growing or
  /// purging tombstones when the table is at max load. Claims the slot
  /// (control byte, count, growth budget) and returns its index; the caller
  /// writes the entry.
  size_t prepareInsert(uint64_t H) {
    if (Slots.empty())
      rehash(MinCapacity);
    size_t I = findInsertSlot(H);
    if (Ctrl[I] == flatmap_detail::CtrlEmpty && GrowthLeft == 0) {
      // At max load counting tombstones. If the live count is at most half
      // the capacity the table is tombstone-bound: rehash in place at the
      // same capacity (dropping tombstones) instead of growing.
      rehash(Count * 2 <= Slots.size() ? Slots.size() : Slots.size() * 2);
      I = findInsertSlot(H);
    }
    if (Ctrl[I] == flatmap_detail::CtrlEmpty)
      --GrowthLeft;
    setCtrl(I, fragmentOf(H));
    ++Count;
    return I;
  }

  /// First empty-or-deleted slot along \p H's probe sequence.
  size_t findInsertSlot(uint64_t H) const {
    size_t Mask = Slots.size() - 1;
    size_t Offset = static_cast<size_t>(H) & Mask;
    size_t Stride = 0;
    for (;;) {
      flatmap_detail::GroupDefault G(Ctrl.data() + Offset);
      if (uint32_t M = G.matchEmptyOrDeleted())
        return (Offset + static_cast<size_t>(std::countr_zero(M))) & Mask;
      Stride += GroupWidth;
      Offset = (Offset + Stride) & Mask;
      assert(Stride <= Slots.size() && "probe sequence cycled");
    }
  }

  void eraseAt(size_t I) {
    // "Was never full" check (Abseil): a probe for any key passing through
    // slot I must have entered through the window before it or the window
    // starting at it. If both windows still contain an empty byte close
    // enough that every 16-wide window covering I sees one, no probe can
    // ever have skipped past I, and the slot can return to empty instead
    // of becoming a tombstone.
    size_t Mask = Slots.size() - 1;
    size_t Before = (I - GroupWidth) & Mask;
    uint32_t EmptyAfter =
        flatmap_detail::GroupDefault(Ctrl.data() + I).matchEmpty();
    uint32_t EmptyBefore =
        flatmap_detail::GroupDefault(Ctrl.data() + Before).matchEmpty();
    bool WasNeverFull =
        EmptyBefore && EmptyAfter &&
        static_cast<size_t>(std::countr_zero(EmptyAfter)) +
                static_cast<size_t>(std::countl_zero(EmptyBefore << 16)) <
            GroupWidth;
    setCtrl(I, WasNeverFull ? flatmap_detail::CtrlEmpty
                            : flatmap_detail::CtrlDeleted);
    if (WasNeverFull)
      ++GrowthLeft;
    Slots[I] = value_type(); // Release the entry's resources.
    --Count;
  }

  void rehash(size_t NewCap) {
    std::vector<value_type> OldSlots = std::move(Slots);
    std::vector<int8_t> OldCtrl = std::move(Ctrl);
    Slots = std::vector<value_type>(NewCap);
    Ctrl.assign(NewCap + GroupWidth,
                static_cast<int8_t>(flatmap_detail::CtrlEmpty));
    Count = 0;
    GrowthLeft = maxLoad(NewCap);
    for (size_t I = 0; I != OldSlots.size(); ++I)
      if (OldCtrl[I] >= 0) {
        size_t J = prepareInsert(hashOf(OldSlots[I].first));
        Slots[J] = std::move(OldSlots[I]);
      }
  }

  std::vector<value_type> Slots;
  /// One control byte per slot plus GroupWidth cloned bytes mirroring the
  /// first window, so unaligned group loads never wrap.
  std::vector<int8_t> Ctrl;
  size_t Count = 0;
  /// Empty slots that may still be converted to occupied before the table
  /// hits max load (tombstones count against the budget until a rehash
  /// reclaims them).
  size_t GrowthLeft = 0;
};

} // namespace crd

#endif // CRD_SUPPORT_FLATMAP_H
