//===- support/Ids.h - Strongly typed identifiers ---------------*- C++ -*-===//
//
// Part of the CRD project: a reproduction of "Commutativity Race Detection"
// (Dimitrov, Raychev, Vechev, Koskinen; PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed integer identifiers for threads, shared objects, locks,
/// methods and memory locations. Using distinct wrapper types prevents the
/// classic bug of passing a lock id where a thread id is expected.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_IDS_H
#define CRD_SUPPORT_IDS_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace crd {

/// CRTP base for strongly typed 32-bit identifiers.
///
/// Each derived type is an opaque index. Identifiers are totally ordered and
/// hashable so they can key both ordered and unordered containers.
template <typename Derived> class IdBase {
public:
  constexpr IdBase() = default;
  constexpr explicit IdBase(uint32_t Index) : Index(Index) {}

  /// Returns the raw index. Useful for indexing dense arrays.
  constexpr uint32_t index() const { return Index; }

  friend constexpr bool operator==(Derived A, Derived B) {
    return A.Index == B.Index;
  }
  friend constexpr bool operator!=(Derived A, Derived B) {
    return A.Index != B.Index;
  }
  friend constexpr bool operator<(Derived A, Derived B) {
    return A.Index < B.Index;
  }

private:
  uint32_t Index = 0;
};

/// Identifies a thread of the analyzed program.
class ThreadId : public IdBase<ThreadId> {
  using IdBase::IdBase;

public:
  constexpr ThreadId() = default;
  constexpr explicit ThreadId(uint32_t Index) : IdBase(Index) {}
};

/// Identifies a shared object (e.g. one ConcurrentHashMap instance).
class ObjectId : public IdBase<ObjectId> {
public:
  constexpr ObjectId() = default;
  constexpr explicit ObjectId(uint32_t Index) : IdBase(Index) {}
};

/// Identifies a lock of the analyzed program.
class LockId : public IdBase<LockId> {
public:
  constexpr LockId() = default;
  constexpr explicit LockId(uint32_t Index) : IdBase(Index) {}
};

/// Identifies a low-level memory location (field, array slot, counter) as
/// seen by the FastTrack read-write detector.
class VarId : public IdBase<VarId> {
public:
  constexpr VarId() = default;
  constexpr explicit VarId(uint32_t Index) : IdBase(Index) {}
};

} // namespace crd

namespace std {
template <> struct hash<crd::ThreadId> {
  size_t operator()(crd::ThreadId Id) const noexcept { return Id.index(); }
};
template <> struct hash<crd::ObjectId> {
  size_t operator()(crd::ObjectId Id) const noexcept { return Id.index(); }
};
template <> struct hash<crd::LockId> {
  size_t operator()(crd::LockId Id) const noexcept { return Id.index(); }
};
template <> struct hash<crd::VarId> {
  size_t operator()(crd::VarId Id) const noexcept { return Id.index(); }
};
} // namespace std

#endif // CRD_SUPPORT_IDS_H
