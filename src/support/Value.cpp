//===- support/Value.cpp - Action argument/return value domain ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "support/Value.h"

#include <ostream>
#include <sstream>

using namespace crd;

std::string Value::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Nil:
    return OS << "nil";
  case Value::Kind::Bool:
    return OS << (V.asBool() ? "true" : "false");
  case Value::Kind::Int:
    return OS << V.asInt();
  case Value::Kind::Str:
    return OS << '"' << V.asSymbol().str() << '"';
  }
  return OS;
}
