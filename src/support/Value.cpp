//===- support/Value.cpp - Action argument/return value domain ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "support/Value.h"

#include <ostream>
#include <sstream>

using namespace crd;

std::string Value::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Nil:
    return OS << "nil";
  case Value::Kind::Bool:
    return OS << (V.asBool() ? "true" : "false");
  case Value::Kind::Int:
    return OS << V.asInt();
  case Value::Kind::Str: {
    // Escape exactly what the trace lexer unescapes, so printed values
    // re-parse to the same symbol.
    OS << '"';
    for (char C : V.asSymbol().str()) {
      switch (C) {
      case '\n':
        OS << "\\n";
        break;
      case '\t':
        OS << "\\t";
        break;
      case '"':
        OS << "\\\"";
        break;
      case '\\':
        OS << "\\\\";
        break;
      default:
        OS << C;
      }
    }
    return OS << '"';
  }
  }
  return OS;
}
