//===- support/Metrics.h - Zero-cost-when-off metrics layer -----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability primitives threaded through the detector stack:
/// single-writer counters, fixed-bucket histograms, and a monotonic
/// nanosecond clock, all compiled down to no-ops when the build sets
/// `CRD_METRICS=0` (CMake `-DCRD_METRICS=OFF`). Consumers write the same
/// code either way; in an off build every increment folds away, `get()`
/// returns 0, and `nowNs()` is a constant — the hot paths carry no clock
/// reads and no extra stores.
///
/// Concurrency model: every counter and histogram has exactly ONE writer
/// (the sequential detector thread, a specific shard worker, the pre-pass
/// thread). Readers only look after the owning pipeline has quiesced
/// (flush/processTrace returned), so plain non-atomic fields suffice —
/// what the layer guarantees instead is *placement*: `Counter` is padded
/// to a cache line so per-shard counters laid out in arrays never share a
/// line across writer threads (MetricsTest hammers this).
///
/// Snapshots are emitted as JSON through `JsonWriter` (always compiled —
/// an off build still emits a snapshot, with `"metrics_enabled": false`
/// and zeroed counters). The snapshot schema is documented in
/// `docs/observability.md`.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_METRICS_H
#define CRD_SUPPORT_METRICS_H

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

/// Build gate. CMake defines CRD_METRICS=1/0 on every target through
/// crd_support; standalone inclusion defaults to on.
#ifndef CRD_METRICS
#define CRD_METRICS 1
#endif

namespace crd {
namespace metrics {

/// True when the build carries the instrumentation.
inline constexpr bool Enabled = CRD_METRICS != 0;

/// Cache line size used for counter padding (std::hardware_destructive_
/// interference_size is not portable across the toolchains we build on).
inline constexpr size_t CacheLineBytes = 64;

#if CRD_METRICS

/// Monotonic nanoseconds (steady clock). All `*_ns` snapshot fields are
/// differences of this clock.
inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Single-writer event counter, padded so arrays of counters written by
/// different threads never false-share.
class alignas(CacheLineBytes) Counter {
public:
  void inc() { ++V; }
  void add(uint64_t N) { V += N; }
  uint64_t get() const { return V; }
  void reset() { V = 0; }

private:
  uint64_t V = 0;
};

/// Fixed-bucket histogram with identity bucketing: value v lands in bucket
/// min(v, N-1) — the last bucket absorbs the tail. Used for small discrete
/// domains (ring occupancy, batch-fill deciles). Single writer; merge()
/// combines per-thread instances after quiescence.
template <size_t N> class LinearHistogram {
  static_assert(N >= 2, "a histogram needs at least two buckets");

public:
  void record(uint64_t V) {
    ++Buckets[V < N - 1 ? V : N - 1];
    ++Total;
    Sum += V;
    if (V > Peak)
      Peak = V;
  }

  static constexpr size_t bucketCount() { return N; }
  uint64_t bucket(size_t I) const { return Buckets[I]; }
  uint64_t count() const { return Total; }
  uint64_t sum() const { return Sum; }
  uint64_t max() const { return Peak; }

  void merge(const LinearHistogram &O) {
    for (size_t I = 0; I != N; ++I)
      Buckets[I] += O.Buckets[I];
    Total += O.Total;
    Sum += O.Sum;
    if (O.Peak > Peak)
      Peak = O.Peak;
  }

  std::array<uint64_t, N> counts() const { return Buckets; }

private:
  std::array<uint64_t, N> Buckets{};
  uint64_t Total = 0;
  uint64_t Sum = 0;
  uint64_t Peak = 0;
};

/// Fixed-bucket histogram with power-of-two bucketing: bucket i counts
/// values in [2^(i-1), 2^i) (bucket 0 counts zero), the last bucket absorbs
/// the tail. Used for wide-range quantities (latencies in ns).
template <size_t N> class Pow2Histogram {
  static_assert(N >= 2, "a histogram needs at least two buckets");

public:
  void record(uint64_t V) {
    ++Buckets[bucketOf(V)];
    ++Total;
    Sum += V;
    if (V > Peak)
      Peak = V;
  }

  /// Bucket index for \p V: 0 for 0, otherwise 1 + floor(log2 V), capped.
  static constexpr size_t bucketOf(uint64_t V) {
    size_t B = 0;
    while (V != 0 && B < N - 1) {
      V >>= 1;
      ++B;
    }
    return B;
  }

  static constexpr size_t bucketCount() { return N; }
  uint64_t bucket(size_t I) const { return Buckets[I]; }
  uint64_t count() const { return Total; }
  uint64_t sum() const { return Sum; }
  uint64_t max() const { return Peak; }

  void merge(const Pow2Histogram &O) {
    for (size_t I = 0; I != N; ++I)
      Buckets[I] += O.Buckets[I];
    Total += O.Total;
    Sum += O.Sum;
    if (O.Peak > Peak)
      Peak = O.Peak;
  }

  std::array<uint64_t, N> counts() const { return Buckets; }

private:
  std::array<uint64_t, N> Buckets{};
  uint64_t Total = 0;
  uint64_t Sum = 0;
  uint64_t Peak = 0;
};

#else // !CRD_METRICS — every primitive is an empty shell the optimizer
      // deletes; get()/count() read as zero so snapshots stay well formed.

inline constexpr uint64_t nowNs() { return 0; }

class Counter {
public:
  void inc() {}
  void add(uint64_t) {}
  uint64_t get() const { return 0; }
  void reset() {}
};

template <size_t N> class LinearHistogram {
public:
  void record(uint64_t) {}
  static constexpr size_t bucketCount() { return N; }
  uint64_t bucket(size_t) const { return 0; }
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t max() const { return 0; }
  void merge(const LinearHistogram &) {}
  std::array<uint64_t, N> counts() const { return {}; }
};

template <size_t N> class Pow2Histogram {
public:
  void record(uint64_t) {}
  static constexpr size_t bucketOf(uint64_t) { return 0; }
  static constexpr size_t bucketCount() { return N; }
  uint64_t bucket(size_t) const { return 0; }
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t max() const { return 0; }
  void merge(const Pow2Histogram &) {}
  std::array<uint64_t, N> counts() const { return {}; }
};

#endif // CRD_METRICS

//===----------------------------------------------------------------------===//
// JsonWriter — always compiled (snapshots are emitted even when the
// counters are compiled out).
//===----------------------------------------------------------------------===//

/// Minimal streaming JSON emitter: nested objects/arrays, pretty-printed
/// with two-space indentation, string escaping per RFC 8259. No buffering
/// beyond the target ostream; misuse (value without key inside an object)
/// is the caller's bug, kept cheap to spot by the structured field()
/// helpers.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}

  void beginObject() {
    prefix();
    OS << '{';
    push(/*IsArray=*/false);
  }
  void endObject() {
    pop();
    OS << '}';
  }
  void beginArray() {
    prefix();
    OS << '[';
    push(/*IsArray=*/true);
  }
  void endArray() {
    pop();
    OS << ']';
  }

  /// Emits `"K":` inside the current object; the next emission is its value.
  void key(std::string_view K) {
    prefix();
    writeString(K);
    OS << ": ";
    PendingValue = true;
  }

  void value(uint64_t V) {
    prefix();
    OS << V;
  }
  void value(int64_t V) {
    prefix();
    OS << V;
  }
  void value(double V) {
    prefix();
    // JSON has no NaN/Inf; clamp to null.
    if (V != V || V > 1.7e308 || V < -1.7e308)
      OS << "null";
    else
      OS << V;
  }
  void value(bool V) {
    prefix();
    OS << (V ? "true" : "false");
  }
  void value(std::string_view V) {
    prefix();
    writeString(V);
  }
  /// Without this overload a string literal would take the pointer→bool
  /// standard conversion over the string_view constructor.
  void value(const char *V) { value(std::string_view(V)); }

  void field(std::string_view K, uint64_t V) {
    key(K);
    value(V);
  }
  void field(std::string_view K, double V) {
    key(K);
    value(V);
  }
  void field(std::string_view K, bool V) {
    key(K);
    value(V);
  }
  void field(std::string_view K, std::string_view V) {
    key(K);
    value(V);
  }
  void field(std::string_view K, const char *V) {
    key(K);
    value(std::string_view(V));
  }

  /// `"K": [a, b, ...]` from any uint64 range (histogram bucket arrays).
  template <typename Range> void fieldArray(std::string_view K, const Range &R) {
    key(K);
    beginArray();
    for (uint64_t V : R)
      value(V);
    endArray();
  }

private:
  struct Level {
    bool IsArray;
    bool HasItems = false;
  };

  void push(bool IsArray) {
    Stack.push_back({IsArray});
    PendingValue = false;
  }
  void pop() {
    bool HadItems = Stack.back().HasItems;
    Stack.pop_back();
    if (HadItems) {
      OS << '\n';
      indent(Stack.size()); // Close at the depth of the popped container.
    }
  }

  /// Comma/newline/indent bookkeeping shared by every emission.
  void prefix() {
    if (PendingValue) { // Value directly after its key: stay on the line.
      PendingValue = false;
      return;
    }
    if (Stack.empty())
      return;
    if (Stack.back().HasItems)
      OS << ',';
    Stack.back().HasItems = true;
    OS << '\n';
    indent(Stack.size());
  }

  void indent(size_t Levels) {
    for (size_t I = 0; I < Levels; ++I)
      OS << "  ";
  }

  void writeString(std::string_view S) {
    OS << '"';
    for (char C : S) {
      switch (C) {
      case '"':
        OS << "\\\"";
        break;
      case '\\':
        OS << "\\\\";
        break;
      case '\n':
        OS << "\\n";
        break;
      case '\t':
        OS << "\\t";
        break;
      case '\r':
        OS << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          const char *Hex = "0123456789abcdef";
          OS << "\\u00" << Hex[(C >> 4) & 0xF] << Hex[C & 0xF];
        } else {
          OS << C;
        }
      }
    }
    OS << '"';
  }

  std::ostream &OS;
  std::vector<Level> Stack;
  bool PendingValue = false;
};

} // namespace metrics
} // namespace crd

#endif // CRD_SUPPORT_METRICS_H
