//===- support/Symbol.cpp - Interned strings --------------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "support/Symbol.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

using namespace crd;

struct SymbolTable::Impl {
  mutable std::mutex Mutex;
  // Deque keeps the string storage stable so string_views stay valid as the
  // table grows.
  std::deque<std::string> Spellings;
  std::unordered_map<std::string_view, uint32_t> Index;
};

SymbolTable::SymbolTable() : Storage(new Impl) {}

SymbolTable::~SymbolTable() { delete Storage; }

Symbol SymbolTable::intern(std::string_view Text) {
  std::lock_guard<std::mutex> Guard(Storage->Mutex);
  auto It = Storage->Index.find(Text);
  if (It != Storage->Index.end())
    return Symbol(It->second);

  uint32_t Id = static_cast<uint32_t>(Storage->Spellings.size());
  Storage->Spellings.emplace_back(Text);
  Storage->Index.emplace(Storage->Spellings.back(), Id);
  return Symbol(Id);
}

std::string_view SymbolTable::str(Symbol Sym) const {
  std::lock_guard<std::mutex> Guard(Storage->Mutex);
  assert(Sym.index() < Storage->Spellings.size() &&
         "symbol does not belong to this table");
  return Storage->Spellings[Sym.index()];
}

size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> Guard(Storage->Mutex);
  return Storage->Spellings.size();
}

SymbolTable &SymbolTable::global() {
  static SymbolTable Table;
  return Table;
}

std::string_view Symbol::str() const { return SymbolTable::global().str(*this); }

Symbol crd::symbol(std::string_view Text) {
  return SymbolTable::global().intern(Text);
}
