//===- support/EpochClock.h - Adaptive epoch clocks -------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adaptive clocks in the FASTTRACK style (Flanagan & Freund, PLDI 2009):
/// while all events accumulated into the clock are totally ordered by
/// happens-before, the whole history is summarized by a single scalar epoch
/// c@t — the local time of the latest event's thread — and both the ⊑ probe
/// and the accumulate step are O(1). On the first accumulation of a clock
/// that is *not* ordered after the stored epoch, the representation
/// escalates lazily to a full VectorClock and stays there.
///
/// Soundness of the compression rests on the standard epoch property: for
/// any clock C obtainable by the Table 1 vector-clock machine (a thread
/// clock, or a join of thread clocks) and any event e,
///
///     vc(e) ⊑ C  ⟺  vc(e)(tid(e)) ≤ C(tid(e)),
///
/// because tid(e)'s component of C can only reach vc(e)(tid(e)) by
/// transitively joining a clock that already absorbed all of vc(e). Hence
/// probing an epoch (or a per-thread summary of local times) against such a
/// C answers exactly as probing the full join of the accumulated clocks
/// would (paper Appendix A.1 invariant, modulo this equivalence).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_EPOCHCLOCK_H
#define CRD_SUPPORT_EPOCHCLOCK_H

#include "support/VectorClock.h"

#include <cassert>
#include <memory>

namespace crd {

/// An adaptively-represented accumulated clock: either ⊥, a scalar epoch
/// c@t, or (after escalation) a full VectorClock.
class EpochClock {
public:
  /// Constructs ⊥ (no event accumulated yet).
  EpochClock() = default;

  EpochClock(EpochClock &&) = default;
  EpochClock &operator=(EpochClock &&) = default;
  EpochClock(const EpochClock &Other)
      : Time(Other.Time), Tid(Other.Tid),
        Full(Other.Full ? std::make_unique<VectorClock>(*Other.Full)
                        : nullptr) {}
  EpochClock &operator=(const EpochClock &Other) {
    if (this != &Other) {
      Time = Other.Time;
      Tid = Other.Tid;
      Full = Other.Full ? std::make_unique<VectorClock>(*Other.Full) : nullptr;
    }
    return *this;
  }

  /// True when no event has been accumulated (and the clock is not shared).
  bool isBottom() const { return !Full && Time == 0; }
  /// True while the history is compressed to a single scalar epoch.
  bool isEpoch() const { return !Full && Time != 0; }
  /// True once escalated to a full vector clock.
  bool isShared() const { return Full != nullptr; }

  /// The epoch's thread / local time; valid only while isEpoch().
  ThreadId epochThread() const {
    assert(isEpoch() && "not an epoch");
    return Tid;
  }
  uint32_t epochTime() const {
    assert(isEpoch() && "not an epoch");
    return Time;
  }

  /// True when the epoch is exactly \p Time @ \p Thread (FASTTRACK's
  /// [Same Epoch] fast path). Shared clocks never answer true.
  bool sameEpoch(ThreadId Thread, uint32_t T) const {
    return isEpoch() && Tid == Thread && Time == T;
  }

  /// The component visible for \p Thread: the epoch time when it matches,
  /// the stored component once shared, zero otherwise.
  uint32_t localOf(ThreadId Thread) const {
    if (Full)
      return Full->get(Thread);
    return (Time != 0 && Tid == Thread) ? Time : 0;
  }

  /// Accumulated-clock ⊑ \p C, for C obtainable from the clock machine
  /// (see the file comment). O(1) while compressed; the escalated path
  /// runs the SIMD leq kernel (VectorClock.h).
  bool leq(const VectorClock &C) const {
    if (Full)
      return Full->leq(C);
    return Time <= C.get(Tid);
  }

  /// leq() routed through the scalar clock kernel; differential-test
  /// counterpart, bit-identical to leq().
  bool leqScalar(const VectorClock &C) const {
    if (Full)
      return Full->leqScalar(C);
    return Time <= C.get(Tid);
  }

  /// Algorithm 1 phase 2: accumulates \p C, the clock of an event executed
  /// by \p Thread. While the new event is ordered after everything
  /// accumulated so far the epoch merely advances; otherwise the clock
  /// escalates and joins from then on.
  ///
  /// Returns true when the *representation* changed — the (thread, time)
  /// epoch pair moved, the clock escalated, or a shared component grew.
  /// Representation (not value) change is what chunk memoization must
  /// track: toClock() renders the representation into race reports, so a
  /// value-equivalent but differently-represented clock would break race
  /// bit-identity.
  bool accumulate(const VectorClock &C, ThreadId Thread) {
    if (Full)
      return Full->joinWith(C);
    assert(C.get(Thread) > 0 && "event clock lacks its own component");
    if (Time <= C.get(Tid)) { // Covers ⊥ and the HB-ordered epoch case.
      uint32_t NewTime = C.get(Thread);
      bool Changed = !(Time != 0 && Tid == Thread && Time == NewTime);
      Tid = Thread;
      Time = NewTime;
      return Changed;
    }
    escalate();
    Full->joinWith(C);
    return true;
  }

  /// accumulate() routed through the scalar clock kernel; differential-test
  /// counterpart, bit-identical (same Changed signal, same representation)
  /// across the epoch-advance, escalation, and shared-join paths.
  bool accumulateScalar(const VectorClock &C, ThreadId Thread) {
    if (Full)
      return Full->joinWithScalar(C);
    assert(C.get(Thread) > 0 && "event clock lacks its own component");
    if (Time <= C.get(Tid)) {
      uint32_t NewTime = C.get(Thread);
      bool Changed = !(Time != 0 && Tid == Thread && Time == NewTime);
      Tid = Thread;
      Time = NewTime;
      return Changed;
    }
    escalate();
    Full->joinWithScalar(C);
    return true;
  }

  /// Replaces the representation with the single epoch \p T @ \p Thread
  /// (FASTTRACK's [Read Exclusive] update).
  void setEpoch(ThreadId Thread, uint32_t T) {
    Full.reset();
    Tid = Thread;
    Time = T;
  }

  /// Forces escalation to the vector representation, seeding it with the
  /// current epoch (if any).
  void escalate() {
    if (Full)
      return;
    Full = std::make_unique<VectorClock>();
    if (Time != 0)
      Full->set(Tid, Time);
    Time = 0;
  }

  /// Sets one component of the shared representation (FASTTRACK's
  /// [Read Shared] update). Valid only once escalated.
  void setLocal(ThreadId Thread, uint32_t T) {
    assert(Full && "setLocal on a non-shared clock");
    Full->set(Thread, T);
  }

  /// The shared vector clock; valid only once escalated.
  const VectorClock &sharedClock() const {
    assert(Full && "not shared");
    return *Full;
  }

  /// Resets to ⊥.
  void clear() {
    Full.reset();
    Time = 0;
    Tid = ThreadId();
  }

  /// Materializes the current representation as a plain VectorClock (for
  /// race reports and diagnostics). Note: while compressed this is the
  /// epoch's single component, not the full join of accumulated clocks —
  /// probe-equivalent to it against machine-obtainable clocks.
  VectorClock toClock() const;

private:
  uint32_t Time = 0; ///< Epoch local time; 0 encodes ⊥ (thread clocks
                     ///< start at 1, so 0 is never a valid epoch).
  ThreadId Tid;      ///< Epoch thread.
  std::unique_ptr<VectorClock> Full; ///< Escalated representation.
};

} // namespace crd

#endif // CRD_SUPPORT_EPOCHCLOCK_H
