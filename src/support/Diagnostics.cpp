//===- support/Diagnostics.cpp - Parser/analysis diagnostics --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <ostream>
#include <sstream>

using namespace crd;

static const char *severityName(Diagnostic::Severity S) {
  switch (S) {
  case Diagnostic::Severity::Error:
    return "error";
  case Diagnostic::Severity::Warning:
    return "warning";
  case Diagnostic::Severity::Note:
    return "note";
  }
  return "error";
}

std::string Diagnostic::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const Diagnostic &D) {
  if (D.Loc.isValid())
    OS << D.Loc.Line << ':' << D.Loc.Column << ": ";
  return OS << severityName(D.Level) << ": " << D.Message;
}

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({Diagnostic::Severity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({Diagnostic::Severity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({Diagnostic::Severity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::toString() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D << '\n';
  return OS.str();
}
