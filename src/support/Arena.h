//===- support/Arena.h - Bump allocator with chunk reset --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump allocator for short-lived, trivially destructible payloads —
/// the decoded Value sequences of wire events. WireReader carves each
/// invoke's argument/return values out of an arena instead of two heap
/// vectors, and reset() at the next chunk boundary rewinds the arena
/// without returning memory to the OS, so after the first trace chunk
/// warms the arena the decode loop performs zero heap allocations.
///
/// Lifetime rule: everything allocated since the last reset() dies
/// together at the next reset(). Holders that must outlive the reset
/// (shard batches in flight, materialized races) deep-copy out first —
/// Action's copy constructor does exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_ARENA_H
#define CRD_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace crd {

class Arena {
public:
  /// \p ChunkBytes is the granularity of growth; single allocations larger
  /// than it get a dedicated chunk.
  explicit Arena(size_t ChunkBytes = 64 * 1024) : ChunkBytes(ChunkBytes) {}

  Arena(Arena &&) = default;
  Arena &operator=(Arena &&) = default;

  /// Allocates uninitialized storage for \p Count objects of \p T, aligned
  /// for T. T must be trivially destructible: reset() rewinds without
  /// running destructors.
  template <typename T> T *allocate(size_t Count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without destructors");
    return static_cast<T *>(allocateBytes(Count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, retaining every chunk for reuse. All outstanding
  /// allocations become dangling.
  void reset() {
    Cur = 0;
    Pos = 0;
  }

  /// Chunks currently held (retained across resets). A steady-state
  /// workload stops growing this after warmup — the property ArenaTest
  /// and the bench allocation counter check.
  size_t chunkCount() const { return Chunks.size(); }

  /// Bytes handed out since the last reset (excluding alignment padding of
  /// skipped chunk tails).
  size_t bytesUsed() const {
    size_t Used = Pos;
    for (size_t I = 0; I != Cur; ++I)
      Used += Chunks[I].Size;
    return Used;
  }

  /// Total chunk bytes held, including chunks retained across resets —
  /// the arena's actual resident footprint, which is what per-session
  /// memory ceilings must budget (bytesUsed() drops to zero at reset()
  /// while the chunks live on).
  size_t bytesReserved() const {
    size_t Total = 0;
    for (const Chunk &C : Chunks)
      Total += C.Size;
    return Total;
  }

private:
  struct Chunk {
    std::unique_ptr<std::byte[]> Data;
    size_t Size;
  };

  void *allocateBytes(size_t Bytes, size_t Align) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    while (Cur != Chunks.size()) {
      size_t Aligned = alignUp(Pos, Align);
      if (Aligned + Bytes <= Chunks[Cur].Size) {
        Pos = Aligned + Bytes;
        return Chunks[Cur].Data.get() + Aligned;
      }
      ++Cur; // Chunk tail too small; move on (the tail is reclaimed by
      Pos = 0; // the next reset, not leaked).
    }
    // Out of retained chunks: grow. Chunk starts are new[]-aligned, which
    // covers every T the arena is used for.
    size_t Size = Bytes > ChunkBytes ? Bytes : ChunkBytes;
    Chunks.push_back({std::make_unique<std::byte[]>(Size), Size});
    Pos = Bytes;
    return Chunks.back().Data.get();
  }

  static size_t alignUp(size_t N, size_t Align) {
    return (N + Align - 1) & ~(Align - 1);
  }

  std::vector<Chunk> Chunks;
  size_t Cur = 0;  // Chunk currently being bumped.
  size_t Pos = 0;  // Bump offset within Chunks[Cur].
  size_t ChunkBytes;
};

} // namespace crd

#endif // CRD_SUPPORT_ARENA_H
