//===- support/CharCursor.h - Line/column tracking scanner ------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A character cursor over a source buffer that tracks 1-based line/column
/// positions. Shared by the trace lexer and the ECL specification lexer.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_CHARCURSOR_H
#define CRD_SUPPORT_CHARCURSOR_H

#include "support/Diagnostics.h"

#include <string_view>

namespace crd {

/// Scans a string buffer one character at a time, maintaining the current
/// SourceLocation for diagnostics.
class CharCursor {
public:
  explicit CharCursor(std::string_view Buffer) : Buffer(Buffer) {}

  bool atEnd() const { return Pos >= Buffer.size(); }

  /// Current character, or '\0' at end of input.
  char peek() const { return atEnd() ? '\0' : Buffer[Pos]; }

  /// Character after the current one, or '\0'.
  char peekNext() const {
    return Pos + 1 < Buffer.size() ? Buffer[Pos + 1] : '\0';
  }

  /// Consumes and returns the current character.
  char advance() {
    char C = peek();
    if (atEnd())
      return C;
    ++Pos;
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  /// Consumes the current character when it equals \p Expected.
  bool consume(char Expected) {
    if (peek() != Expected)
      return false;
    advance();
    return true;
  }

  SourceLocation location() const { return {Line, Column}; }
  size_t offset() const { return Pos; }

  /// Text between byte offsets [Begin, End).
  std::string_view slice(size_t Begin, size_t End) const {
    return Buffer.substr(Begin, End - Begin);
  }

private:
  std::string_view Buffer;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace crd

#endif // CRD_SUPPORT_CHARCURSOR_H
