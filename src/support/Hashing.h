//===- support/Hashing.h - Hash combination utilities -----------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combining helpers used by the value domain and access points.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_HASHING_H
#define CRD_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace crd {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine style,
/// with a 64-bit golden-ratio constant).
inline size_t hashCombine(size_t Seed, size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

/// Hashes all arguments into a single value.
template <typename... Ts> size_t hashAll(const Ts &...Values) {
  size_t Seed = 0;
  ((Seed = hashCombine(Seed, std::hash<Ts>{}(Values))), ...);
  return Seed;
}

} // namespace crd

#endif // CRD_SUPPORT_HASHING_H
