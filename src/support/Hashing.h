//===- support/Hashing.h - Hash combination utilities -----------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combining helpers used by the value domain and access points.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_HASHING_H
#define CRD_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace crd {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine style,
/// with a 64-bit golden-ratio constant).
inline size_t hashCombine(size_t Seed, size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

/// Hashes all arguments into a single value.
template <typename... Ts> size_t hashAll(const Ts &...Values) {
  size_t Seed = 0;
  ((Seed = hashCombine(Seed, std::hash<Ts>{}(Values))), ...);
  return Seed;
}

/// Finalizing 64-bit mixer (splitmix64). Id-like keys hash to their raw
/// index, which clusters catastrophically in power-of-two tables and under
/// modulo sharding; running the value through this fixed-point-free
/// permutation spreads every input bit across the whole output word.
inline uint64_t hashMix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Content digest over a byte range: an 8-byte-stride multiply-mix with a
/// splitmix64 finalizer. Unlike std::hash, the result is pinned by this
/// definition — it must stay stable across processes, library versions and
/// writer runs, because the wire format records it in chunk headers and
/// readers key decode/summary caches by it (docs/trace-format.md).
inline uint64_t hashBytes64(const void *Data, size_t Size) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = 0x2545f4914f6cdd1dULL ^ (uint64_t(Size) * 0x9e3779b97f4a7c15ULL);
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t W = 0;
    // Byte-wise little-endian load: identical on every host endianness.
    for (unsigned B = 0; B != 8; ++B)
      W |= uint64_t(P[I + B]) << (8 * B);
    H = (H ^ hashMix64(W)) * 0xff51afd7ed558ccdULL;
  }
  uint64_t Tail = 0;
  for (unsigned B = 0; I != Size; ++I, ++B)
    Tail |= uint64_t(P[I]) << (8 * B);
  if (Size % 8)
    H = (H ^ hashMix64(Tail)) * 0xc4ceb9fe1a85ec53ULL;
  return hashMix64(H);
}

} // namespace crd

#endif // CRD_SUPPORT_HASHING_H
