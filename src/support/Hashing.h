//===- support/Hashing.h - Hash combination utilities -----------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combining helpers used by the value domain and access points.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_HASHING_H
#define CRD_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace crd {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine style,
/// with a 64-bit golden-ratio constant).
inline size_t hashCombine(size_t Seed, size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

/// Hashes all arguments into a single value.
template <typename... Ts> size_t hashAll(const Ts &...Values) {
  size_t Seed = 0;
  ((Seed = hashCombine(Seed, std::hash<Ts>{}(Values))), ...);
  return Seed;
}

/// Finalizing 64-bit mixer (splitmix64). Id-like keys hash to their raw
/// index, which clusters catastrophically in power-of-two tables and under
/// modulo sharding; running the value through this fixed-point-free
/// permutation spreads every input bit across the whole output word.
inline uint64_t hashMix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace crd

#endif // CRD_SUPPORT_HASHING_H
