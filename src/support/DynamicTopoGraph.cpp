//===- support/DynamicTopoGraph.cpp - incremental cycle detection --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "support/DynamicTopoGraph.h"

#include <algorithm>
#include <cassert>

using namespace crd;

uint32_t DynamicTopoGraph::addNode() {
  uint32_t Id = static_cast<uint32_t>(Successors.size());
  Successors.emplace_back();
  Predecessors.emplace_back();
  // Creation order is a valid topological index for an isolated node.
  Order.push_back(Id);
  return Id;
}

bool DynamicTopoGraph::hasEdge(uint32_t From, uint32_t To) const {
  const std::vector<uint32_t> &Out = Successors[From];
  return std::find(Out.begin(), Out.end(), To) != Out.end();
}

/// DFS from \p From towards \p To along successor edges, visiting only
/// nodes with Order <= UpperBound. Fills \p Path (From..To) on success.
bool DynamicTopoGraph::findPath(uint32_t From, uint32_t To,
                                uint64_t UpperBound,
                                std::vector<uint32_t> &Path) const {
  std::vector<uint32_t> Stack = {From};
  std::vector<uint32_t> Parent(Successors.size(), UINT32_MAX);
  std::vector<bool> Visited(Successors.size(), false);
  Visited[From] = true;

  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    if (N == To) {
      // Reconstruct From -> ... -> To.
      std::vector<uint32_t> Reverse;
      for (uint32_t Cur = To; Cur != UINT32_MAX; Cur = Parent[Cur])
        Reverse.push_back(Cur);
      Path.assign(Reverse.rbegin(), Reverse.rend());
      return true;
    }
    for (uint32_t S : Successors[N]) {
      if (Visited[S] || Order[S] > UpperBound)
        continue;
      Visited[S] = true;
      Parent[S] = N;
      Stack.push_back(S);
    }
  }
  return false;
}

void DynamicTopoGraph::reorder(uint32_t From, uint32_t To) {
  uint64_t LowerBound = Order[To];
  uint64_t UpperBound = Order[From];

  // RF: nodes forward-reachable from To with Order <= UpperBound.
  // RB: nodes backward-reachable from From with Order >= LowerBound.
  auto Collect = [&](uint32_t Root,
                     const std::vector<std::vector<uint32_t>> &Adj,
                     auto InBounds) {
    std::vector<uint32_t> Out, Stack = {Root};
    std::vector<bool> Visited(Successors.size(), false);
    Visited[Root] = true;
    while (!Stack.empty()) {
      uint32_t N = Stack.back();
      Stack.pop_back();
      Out.push_back(N);
      for (uint32_t S : Adj[N]) {
        if (Visited[S] || !InBounds(Order[S]))
          continue;
        Visited[S] = true;
        Stack.push_back(S);
      }
    }
    return Out;
  };

  std::vector<uint32_t> RF = Collect(
      To, Successors, [&](uint64_t O) { return O <= UpperBound; });
  std::vector<uint32_t> RB = Collect(
      From, Predecessors, [&](uint64_t O) { return O >= LowerBound; });

  auto ByOrder = [&](uint32_t A, uint32_t B) { return Order[A] < Order[B]; };
  std::sort(RF.begin(), RF.end(), ByOrder);
  std::sort(RB.begin(), RB.end(), ByOrder);

  // Pool of order values, reassigned: all of RB (they must precede the
  // edge) then all of RF, each group keeping its internal relative order.
  std::vector<uint64_t> Pool;
  Pool.reserve(RB.size() + RF.size());
  for (uint32_t N : RB)
    Pool.push_back(Order[N]);
  for (uint32_t N : RF)
    Pool.push_back(Order[N]);
  std::sort(Pool.begin(), Pool.end());

  size_t Slot = 0;
  for (uint32_t N : RB)
    Order[N] = Pool[Slot++];
  for (uint32_t N : RF)
    Order[N] = Pool[Slot++];
}

DynamicTopoGraph::InsertResult DynamicTopoGraph::addEdge(uint32_t From,
                                                         uint32_t To) {
  assert(From < Successors.size() && To < Successors.size() &&
         "node id out of range");
  InsertResult Result;
  if (From == To) {
    Result.CyclePath = {From};
    return Result;
  }
  if (hasEdge(From, To)) {
    Result.Inserted = true;
    return Result;
  }

  if (Order[From] >= Order[To]) {
    // The edge goes "backwards": either it closes a cycle (To already
    // reaches From) or the affected region must be reordered.
    std::vector<uint32_t> Path;
    if (findPath(To, From, Order[From], Path)) {
      Result.CyclePath = std::move(Path);
      return Result;
    }
    reorder(From, To);
  }

  Successors[From].push_back(To);
  Predecessors[To].push_back(From);
  ++EdgeCount;
  Result.Inserted = true;
  return Result;
}
