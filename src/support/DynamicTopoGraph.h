//===- support/DynamicTopoGraph.h - incremental cycle detection -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directed graph that maintains a topological order under online edge
/// insertion (Pearce & Kelly, "A dynamic topological sort algorithm for
/// directed acyclic graphs", JEA 2006). Inserting an edge that would close
/// a cycle is *rejected* and the cycle's node path is reported — exactly
/// the primitive a streaming conflict-serializability checker needs.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_DYNAMICTOPOGRAPH_H
#define CRD_SUPPORT_DYNAMICTOPOGRAPH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crd {

/// Incrementally maintained DAG over dense uint32_t node ids.
class DynamicTopoGraph {
public:
  DynamicTopoGraph() = default;

  /// Adds a node; returns its id.
  uint32_t addNode();

  size_t numNodes() const { return Successors.size(); }
  size_t numEdges() const { return EdgeCount; }

  /// Result of an insertion attempt.
  struct InsertResult {
    bool Inserted = false; ///< False when the edge would close a cycle.
    /// On rejection: a path To -> ... -> From witnessing the cycle the
    /// edge (From -> To) would have closed. Empty on success.
    std::vector<uint32_t> CyclePath;
  };

  /// Attempts to insert the edge From -> To. Self-edges are rejected with
  /// the trivial path {From}. Duplicate edges succeed idempotently.
  InsertResult addEdge(uint32_t From, uint32_t To);

  /// Whether the edge already exists.
  bool hasEdge(uint32_t From, uint32_t To) const;

  /// Current topological index of a node (for tests).
  uint64_t orderOf(uint32_t Node) const { return Order[Node]; }

private:
  bool findPath(uint32_t From, uint32_t To, uint64_t UpperBound,
                std::vector<uint32_t> &Path) const;
  void reorder(uint32_t From, uint32_t To);

  std::vector<std::vector<uint32_t>> Successors;
  std::vector<std::vector<uint32_t>> Predecessors;
  std::vector<uint64_t> Order; ///< Strictly increasing along every edge.
  size_t EdgeCount = 0;
};

} // namespace crd

#endif // CRD_SUPPORT_DYNAMICTOPOGRAPH_H
