//===- support/Prefetch.h - Software prefetch hints -------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable software-prefetch hints for the batched detection kernel: the
/// lookahead stage resolves the FlatMap slots of upcoming events and warms
/// the object-state and clock lines while earlier events are still in the
/// phase-1/phase-2 pipeline. Hints only — they never change results — but a
/// CRD_DISABLE_SIMD build compiles them to no-ops so the scalar CI leg
/// exercises zero vendor intrinsics.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_PREFETCH_H
#define CRD_SUPPORT_PREFETCH_H

#if !defined(CRD_DISABLE_SIMD)
#if defined(__SSE2__)
#include <emmintrin.h>
#define CRD_PREFETCH_HAVE_SSE 1
#elif defined(__GNUC__) || defined(__clang__)
#define CRD_PREFETCH_HAVE_BUILTIN 1
#endif
#endif

namespace crd {

/// True when prefetch hints compile to real instructions. The kernel's
/// prefetch counters gate on this so a CRD_DISABLE_SIMD build reports
/// zero prefetches instead of counting no-ops.
#if defined(CRD_PREFETCH_HAVE_SSE) || defined(CRD_PREFETCH_HAVE_BUILTIN)
inline constexpr bool PrefetchEnabled = true;
#else
inline constexpr bool PrefetchEnabled = false;
#endif

/// Hints that the cache line holding \p P will soon be read.
inline void prefetchRead(const void *P) {
#if defined(CRD_PREFETCH_HAVE_SSE)
  _mm_prefetch(static_cast<const char *>(P), _MM_HINT_T0);
#elif defined(CRD_PREFETCH_HAVE_BUILTIN)
  __builtin_prefetch(P, /*rw=*/0, /*locality=*/3);
#else
  (void)P;
#endif
}

/// Hints that the cache line holding \p P will soon be written.
inline void prefetchWrite(const void *P) {
#if defined(CRD_PREFETCH_HAVE_SSE)
  _mm_prefetch(static_cast<const char *>(P), _MM_HINT_T0);
#elif defined(CRD_PREFETCH_HAVE_BUILTIN)
  __builtin_prefetch(P, /*rw=*/1, /*locality=*/3);
#else
  (void)P;
#endif
}

} // namespace crd

#endif // CRD_SUPPORT_PREFETCH_H
