//===- support/EpochClock.cpp - Adaptive epoch clocks ------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "support/EpochClock.h"

using namespace crd;

VectorClock EpochClock::toClock() const {
  if (Full)
    return *Full;
  VectorClock C;
  if (Time != 0)
    C.set(Tid, Time);
  return C;
}
