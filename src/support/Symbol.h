//===- support/Symbol.h - Interned strings ----------------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned strings. Method names, object names and string-valued action
/// arguments (e.g. dictionary keys like "a.com") are interned once so that
/// the hot detector paths compare and hash 32-bit ids instead of strings.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_SYMBOL_H
#define CRD_SUPPORT_SYMBOL_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace crd {

/// An interned string: a cheap, totally ordered, hashable handle.
///
/// Symbols are created through SymbolTable (or the symbol() convenience
/// function which uses the process-wide table). Two Symbols from the same
/// table are equal iff their spellings are equal. The ordering is by
/// interning order, not lexicographic; use str() when lexicographic order
/// matters.
class Symbol {
public:
  constexpr Symbol() = default;

  constexpr uint32_t index() const { return Index; }

  friend constexpr bool operator==(Symbol A, Symbol B) {
    return A.Index == B.Index;
  }
  friend constexpr bool operator!=(Symbol A, Symbol B) {
    return A.Index != B.Index;
  }
  friend constexpr bool operator<(Symbol A, Symbol B) {
    return A.Index < B.Index;
  }

  /// Returns the spelling of this symbol (process-wide table).
  std::string_view str() const;

private:
  friend class SymbolTable;
  constexpr explicit Symbol(uint32_t Index) : Index(Index) {}

  uint32_t Index = 0;
};

/// Deduplicating string table.
///
/// The process-wide instance (SymbolTable::global()) backs the Symbol::str()
/// convenience accessor. Separate instances can be created for isolation in
/// tests.
class SymbolTable {
public:
  SymbolTable();
  ~SymbolTable();
  SymbolTable(const SymbolTable &) = delete;
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Interns \p Text, returning the unique Symbol for this spelling.
  Symbol intern(std::string_view Text);

  /// Returns the spelling of \p Sym. \p Sym must come from this table.
  std::string_view str(Symbol Sym) const;

  /// Number of distinct symbols interned so far.
  size_t size() const;

  /// The process-wide symbol table.
  static SymbolTable &global();

private:
  struct Impl;
  Impl *Storage;
};

/// Interns \p Text into the process-wide table.
Symbol symbol(std::string_view Text);

} // namespace crd

namespace std {
template <> struct hash<crd::Symbol> {
  size_t operator()(crd::Symbol Sym) const noexcept { return Sym.index(); }
};
} // namespace std

#endif // CRD_SUPPORT_SYMBOL_H
