//===- support/SmallVec.h - Inline-storage vector for POD types -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small vector with N elements of inline storage, restricted to
/// trivially copyable element types so every operation is memcpy/assign.
/// Backs VectorClock components and other hot-path arrays where the
/// common case fits inline: a clock copy (race materialization, Table 1
/// lock snapshots, shard batch forwarding) then touches no allocator at
/// all, and the heap path only engages past N elements.
///
/// Deliberately minimal — only the operations the clock code needs —
/// and unlike std::vector, resize() shrinks without releasing capacity,
/// and copy-assignment reuses existing capacity, which is what makes
/// pooled clock snapshots allocation-free in the steady state.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_SMALLVEC_H
#define CRD_SUPPORT_SMALLVEC_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace crd {

template <typename T, unsigned N> class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable types");

public:
  SmallVec() = default;

  SmallVec(const SmallVec &Other) { assignFrom(Other); }

  SmallVec &operator=(const SmallVec &Other) {
    if (this != &Other)
      assignFrom(Other);
    return *this;
  }

  SmallVec(SmallVec &&Other) noexcept { stealFrom(Other); }

  SmallVec &operator=(SmallVec &&Other) noexcept {
    if (this != &Other) {
      releaseHeap();
      stealFrom(Other);
    }
    return *this;
  }

  ~SmallVec() { releaseHeap(); }

  size_t size() const { return Len; }
  bool empty() const { return Len == 0; }
  size_t capacity() const { return Cap; }

  T *data() { return Data; }
  const T *data() const { return Data; }

  T &operator[](size_t I) {
    assert(I < Len);
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Len);
    return Data[I];
  }

  T &back() {
    assert(Len != 0);
    return Data[Len - 1];
  }
  const T &back() const {
    assert(Len != 0);
    return Data[Len - 1];
  }

  T *begin() { return Data; }
  T *end() { return Data + Len; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Len; }

  void push_back(T V) {
    if (Len == Cap)
      grow(Len + 1);
    Data[Len++] = V;
  }

  void pop_back() {
    assert(Len != 0);
    --Len;
  }

  /// Grows to \p NewLen zero-filling new elements, or shrinks without
  /// releasing capacity.
  void resize(size_t NewLen) {
    if (NewLen > Len) {
      if (NewLen > Cap)
        grow(NewLen);
      std::memset(Data + Len, 0, (NewLen - Len) * sizeof(T));
    }
    Len = static_cast<uint32_t>(NewLen);
  }

  void clear() { Len = 0; }

  void assign(const T *Src, size_t Count) {
    if (Count > Cap)
      grow(Count);
    std::memcpy(Data, Src, Count * sizeof(T));
    Len = static_cast<uint32_t>(Count);
  }

  friend bool operator==(const SmallVec &A, const SmallVec &B) {
    return A.Len == B.Len &&
           std::memcmp(A.Data, B.Data, A.Len * sizeof(T)) == 0;
  }
  friend bool operator!=(const SmallVec &A, const SmallVec &B) {
    return !(A == B);
  }

private:
  bool onHeap() const { return Data != Inline; }

  void assignFrom(const SmallVec &Other) { assign(Other.Data, Other.Len); }

  /// Takes Other's heap buffer (or memcpys its inline one) and leaves it
  /// empty-inline. Requires this->Data to be released or inline.
  void stealFrom(SmallVec &Other) {
    if (Other.onHeap()) {
      Data = Other.Data;
      Cap = Other.Cap;
    } else {
      Data = Inline;
      Cap = N;
      std::memcpy(Inline, Other.Inline, Other.Len * sizeof(T));
    }
    Len = Other.Len;
    Other.Data = Other.Inline;
    Other.Cap = N;
    Other.Len = 0;
  }

  void releaseHeap() {
    if (onHeap())
      delete[] Data;
  }

  void grow(size_t Needed) {
    size_t NewCap = Cap * 2;
    while (NewCap < Needed)
      NewCap *= 2;
    T *NewData = new T[NewCap];
    std::memcpy(NewData, Data, Len * sizeof(T));
    releaseHeap();
    Data = NewData;
    Cap = static_cast<uint32_t>(NewCap);
  }

  T Inline[N];
  T *Data = Inline;
  uint32_t Len = 0;
  uint32_t Cap = N;
};

} // namespace crd

#endif // CRD_SUPPORT_SMALLVEC_H
