//===- support/SpscRing.h - Bounded SPSC ring buffer ------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded single-producer/single-consumer ring buffer carrying batches
/// from the sequential clock pre-pass to the shard workers. Blocking on
/// both ends (C++20 atomic wait/notify — futex-backed, no spinning), with
/// a close() that wakes a waiting consumer exactly once the queue drains.
///
/// The closed flag is folded into the tail word (ClosedBit) rather than
/// kept as a separate atomic: a consumer that re-checks "closed?" and then
/// waits on an unchanged tail would otherwise race with a close() landing
/// between the two loads and sleep forever. Folding the flag in means
/// close() always changes the very word the consumer waits on.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_SPSCRING_H
#define CRD_SUPPORT_SPSCRING_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace crd {

template <typename T> class SpscRing {
public:
  /// \p CapacityPow2 slots (must be a power of two, ≥ 1).
  explicit SpscRing(size_t CapacityPow2) : Slots(CapacityPow2) {
    assert(CapacityPow2 != 0 && (CapacityPow2 & (CapacityPow2 - 1)) == 0 &&
           "capacity must be a power of two");
  }

  size_t capacity() const { return Slots.size(); }

  /// Producer: blocks while the ring is full, then enqueues. Must not be
  /// called after close().
  void push(T &&Item) {
    uint64_t Ticket = Tail.load(std::memory_order_relaxed) & ~ClosedBit;
    for (;;) {
      uint64_t H = Head.load(std::memory_order_acquire);
      if (Ticket - H < Slots.size())
        break;
      Head.wait(H, std::memory_order_acquire);
    }
    Slots[Ticket & (Slots.size() - 1)] = std::move(Item);
    Tail.store(Ticket + 1, std::memory_order_release);
    Tail.notify_one();
  }

  /// Consumer: blocks until an item arrives (returning true) or the ring is
  /// closed and drained (returning false).
  bool pop(T &Out) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t T0 = Tail.load(std::memory_order_acquire);
      if ((T0 & ~ClosedBit) != H)
        break;
      if (T0 & ClosedBit)
        return false;
      Tail.wait(T0, std::memory_order_acquire);
    }
    Out = std::move(Slots[H & (Slots.size() - 1)]);
    Head.store(H + 1, std::memory_order_release);
    Head.notify_one();
    return true;
  }

  /// Producer: non-blocking push; false when the ring is currently full.
  /// \p Item is only consumed on success. Used by the batch-recycle path,
  /// where dropping the item (letting buffers free) is an acceptable
  /// fallback when the peer is behind.
  bool tryPush(T &&Item) {
    uint64_t Ticket = Tail.load(std::memory_order_relaxed) & ~ClosedBit;
    uint64_t H = Head.load(std::memory_order_acquire);
    if (Ticket - H >= Slots.size())
      return false;
    Slots[Ticket & (Slots.size() - 1)] = std::move(Item);
    Tail.store(Ticket + 1, std::memory_order_release);
    Tail.notify_one();
    return true;
  }

  /// Consumer: non-blocking pop; false when currently empty (closed or not).
  bool tryPop(T &Out) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    uint64_t T0 = Tail.load(std::memory_order_acquire);
    if ((T0 & ~ClosedBit) == H)
      return false;
    Out = std::move(Slots[H & (Slots.size() - 1)]);
    Head.store(H + 1, std::memory_order_release);
    Head.notify_one();
    return true;
  }

  /// Consumer: batched non-blocking drain. Moves up to \p Max items into
  /// \p Out and returns how many were taken (0 when currently empty). One
  /// acquire load of the tail and one release store of the head cover the
  /// whole batch, so a collector draining K items pays two atomic
  /// operations instead of 2K — the reason this exists (the live-ingestion
  /// collector sweeps many producer rings per round).
  size_t tryPopN(T *Out, size_t Max) {
    if (Max == 0)
      return 0;
    uint64_t H = Head.load(std::memory_order_relaxed);
    uint64_t T0 = Tail.load(std::memory_order_acquire) & ~ClosedBit;
    uint64_t Avail = T0 - H;
    size_t N = Avail < Max ? static_cast<size_t>(Avail) : Max;
    for (size_t I = 0; I != N; ++I)
      Out[I] = std::move(Slots[(H + I) & (Slots.size() - 1)]);
    if (N != 0) {
      Head.store(H + N, std::memory_order_release);
      Head.notify_one();
    }
    return N;
  }

  /// Items currently enqueued, as observed by two independent atomic
  /// loads. Exact when called by the consumer (only it retires items);
  /// from any other thread it is a momentary approximation — fine for the
  /// ring-depth metrics it exists for, not for flow-control decisions.
  size_t approxSize() const {
    uint64_t T0 = Tail.load(std::memory_order_acquire) & ~ClosedBit;
    uint64_t H = Head.load(std::memory_order_acquire);
    return T0 >= H ? static_cast<size_t>(T0 - H) : 0;
  }

  /// Producer: marks the stream as ended. Idempotent. The consumer drains
  /// remaining items, then pop() returns false.
  void close() {
    Tail.fetch_or(ClosedBit, std::memory_order_release);
    Tail.notify_all();
  }

  bool closed() const {
    return (Tail.load(std::memory_order_acquire) & ClosedBit) != 0;
  }

private:
  static constexpr uint64_t ClosedBit = uint64_t(1) << 63;

  std::vector<T> Slots;
  /// Producer-written cursor; bit 63 carries the closed flag so close()
  /// always mutates the word a sleeping consumer waits on.
  alignas(64) std::atomic<uint64_t> Tail{0};
  /// Consumer-written cursor, on its own cache line to avoid false sharing.
  alignas(64) std::atomic<uint64_t> Head{0};
};

} // namespace crd

#endif // CRD_SUPPORT_SPSCRING_H
