//===- support/Value.h - Action argument/return value domain ----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value domain U over which action arguments, return values and
/// specification variables range (paper §3.1, §6.1). The domain contains a
/// distinguished no-value `nil` (used, e.g., by dictionary specifications to
/// express "key was absent"), booleans, 64-bit integers and interned strings.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_VALUE_H
#define CRD_SUPPORT_VALUE_H

#include "support/Hashing.h"
#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace crd {

/// A concrete value from the domain U: nil, bool, int64 or interned string.
///
/// Values are small (16 bytes), trivially copyable, totally ordered (by kind,
/// then payload) and hashable. The total order is only used to make container
/// iteration deterministic; specifications compare values with sameValue()
/// and the ordered predicates below.
class Value {
public:
  enum class Kind : uint8_t { Nil, Bool, Int, Str };

  /// Constructs nil.
  constexpr Value() : TheKind(Kind::Nil), Int(0) {}

  static constexpr Value nil() { return Value(); }
  static constexpr Value boolean(bool B) {
    Value V;
    V.TheKind = Kind::Bool;
    V.Int = B ? 1 : 0;
    return V;
  }
  static constexpr Value integer(int64_t I) {
    Value V;
    V.TheKind = Kind::Int;
    V.Int = I;
    return V;
  }
  static Value string(Symbol Sym) {
    Value V;
    V.TheKind = Kind::Str;
    V.Sym = Sym;
    return V;
  }
  /// Interns \p Text into the process-wide symbol table.
  static Value string(std::string_view Text) { return string(symbol(Text)); }

  Kind kind() const { return TheKind; }
  bool isNil() const { return TheKind == Kind::Nil; }

  bool asBool() const {
    assert(TheKind == Kind::Bool && "value is not a bool");
    return Int != 0;
  }
  int64_t asInt() const {
    assert(TheKind == Kind::Int && "value is not an int");
    return Int;
  }
  Symbol asSymbol() const {
    assert(TheKind == Kind::Str && "value is not a string");
    return Sym;
  }

  friend bool operator==(const Value &A, const Value &B) {
    if (A.TheKind != B.TheKind)
      return false;
    switch (A.TheKind) {
    case Kind::Nil:
      return true;
    case Kind::Bool:
    case Kind::Int:
      return A.Int == B.Int;
    case Kind::Str:
      return A.Sym == B.Sym;
    }
    return false;
  }
  friend bool operator!=(const Value &A, const Value &B) { return !(A == B); }

  /// Deterministic total order: by kind, then payload.
  friend bool operator<(const Value &A, const Value &B) {
    if (A.TheKind != B.TheKind)
      return A.TheKind < B.TheKind;
    switch (A.TheKind) {
    case Kind::Nil:
      return false;
    case Kind::Bool:
    case Kind::Int:
      return A.Int < B.Int;
    case Kind::Str:
      return A.Sym < B.Sym;
    }
    return false;
  }

  /// True when both values are integers and A's payload is less than B's.
  /// Ordered atomic predicates in LB formulas (x < y, ...) are only defined
  /// on integers; comparing other kinds yields false.
  static bool intLess(const Value &A, const Value &B) {
    return A.TheKind == Kind::Int && B.TheKind == Kind::Int && A.Int < B.Int;
  }

  size_t hash() const {
    return hashCombine(static_cast<size_t>(TheKind),
                       TheKind == Kind::Str ? Sym.index()
                                            : static_cast<size_t>(Int));
  }

  /// Renders the value as it appears in trace files: `nil`, `true`, `42`,
  /// `"a.com"`.
  std::string toString() const;

private:
  Kind TheKind;
  union {
    int64_t Int;
    Symbol Sym;
  };
};

std::ostream &operator<<(std::ostream &OS, const Value &V);

} // namespace crd

namespace std {
template <> struct hash<crd::Value> {
  size_t operator()(const crd::Value &V) const noexcept { return V.hash(); }
};
} // namespace std

#endif // CRD_SUPPORT_VALUE_H
