//===- support/VectorClock.h - Vector clocks (paper §3.2) -------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks: maps Tid -> N ordered pointwise, forming a lattice with
/// bottom ⊥V = λτ.0 (paper §3.2). Clocks are stored densely, indexed by
/// thread index, with implicit zero extension so that clocks over different
/// thread universes compose.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_VECTORCLOCK_H
#define CRD_SUPPORT_VECTORCLOCK_H

#include "support/Ids.h"
#include "support/SmallVec.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace crd {

/// A vector clock c ∈ Tid -> N with the pointwise lattice operations of
/// paper §3.2: ⊑ (leq), ⊔ (joinWith), ⊥ (default constructed) and inc_τ.
///
/// Entries for threads beyond the stored size are implicitly zero, so the
/// representation never needs to know the total number of threads up front.
/// Trailing zeros are kept normalized away, making equality structural.
class VectorClock {
public:
  /// Constructs ⊥V (all components zero).
  VectorClock() = default;

  /// Constructs a clock from explicit components (index i = thread i).
  explicit VectorClock(const std::vector<uint32_t> &Init) {
    Components.assign(Init.data(), Init.size());
    normalize();
  }

  /// Returns component c(τ); zero for threads beyond the stored size.
  uint32_t get(ThreadId Thread) const {
    return Thread.index() < Components.size() ? Components[Thread.index()] : 0;
  }

  /// Sets component c(τ) := Time.
  void set(ThreadId Thread, uint32_t Time);

  /// inc_τ: increments this clock's τ component by one.
  void increment(ThreadId Thread);

  /// c := c ⊔ Other (pointwise max). Returns true when any component grew
  /// — i.e. the representation changed. The chunk-memoization layer keys
  /// "this chunk was a state no-op" on exactly this signal.
  bool joinWith(const VectorClock &Other);

  /// Returns c1 ⊔ c2 without mutating either operand.
  static VectorClock join(const VectorClock &A, const VectorClock &B);

  /// c1 ⊑ c2: pointwise less-or-equal.
  bool leq(const VectorClock &Other) const;

  /// True when neither c1 ⊑ c2 nor c2 ⊑ c1: events with such clocks may
  /// happen in parallel (the ‖ relation).
  bool concurrentWith(const VectorClock &Other) const {
    return !leq(Other) && !Other.leq(*this);
  }

  /// True when every component is zero.
  bool isBottom() const { return Components.empty(); }

  /// Number of stored (non-implicit) components.
  size_t size() const { return Components.size(); }

  friend bool operator==(const VectorClock &A, const VectorClock &B) {
    return A.Components == B.Components;
  }
  friend bool operator!=(const VectorClock &A, const VectorClock &B) {
    return !(A == B);
  }

  /// Renders e.g. ⟨3,0,1⟩ as "<3,0,1>".
  std::string toString() const;

private:
  void normalize();

  /// Most traces sync across a handful of threads, so 8 inline components
  /// keep clock copies (race snapshots, Table 1 lock clocks, shard batch
  /// forwarding) off the allocator entirely.
  SmallVec<uint32_t, 8> Components;
};

std::ostream &operator<<(std::ostream &OS, const VectorClock &VC);

} // namespace crd

#endif // CRD_SUPPORT_VECTORCLOCK_H
