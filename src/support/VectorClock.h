//===- support/VectorClock.h - Vector clocks (paper §3.2) -------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks: maps Tid -> N ordered pointwise, forming a lattice with
/// bottom ⊥V = λτ.0 (paper §3.2). Clocks are stored densely, indexed by
/// thread index, with implicit zero extension so that clocks over different
/// thread universes compose.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SUPPORT_VECTORCLOCK_H
#define CRD_SUPPORT_VECTORCLOCK_H

#include "support/Ids.h"
#include "support/SmallVec.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

// SIMD clock kernels: pointwise max (join) and pointwise ≤ (leq) over the
// dense uint32_t component arrays, 4 lanes per step. Mirrors the KindScan.h
// pattern: the scalar variants are always compiled (and differentially
// tested against the SIMD ones), and CRD_DISABLE_SIMD forces them
// everywhere. SSE2 has no unsigned 32-bit max/compare, so the kernels bias
// by 0x80000000 to map unsigned order onto signed compares; SSE4.1 builds
// use _mm_max_epu32 directly.
#if defined(__SSE2__) && !defined(CRD_DISABLE_SIMD)
#define CRD_VECTORCLOCK_HAVE_SSE2 1
#include <emmintrin.h>
#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif
#endif

namespace crd {

/// A vector clock c ∈ Tid -> N with the pointwise lattice operations of
/// paper §3.2: ⊑ (leq), ⊔ (joinWith), ⊥ (default constructed) and inc_τ.
///
/// Entries for threads beyond the stored size are implicitly zero, so the
/// representation never needs to know the total number of threads up front.
/// Trailing zeros are kept normalized away, making equality structural.
class VectorClock {
public:
  /// Constructs ⊥V (all components zero).
  VectorClock() = default;

  /// Constructs a clock from explicit components (index i = thread i).
  explicit VectorClock(const std::vector<uint32_t> &Init) {
    Components.assign(Init.data(), Init.size());
    normalize();
  }

  /// Returns component c(τ); zero for threads beyond the stored size.
  uint32_t get(ThreadId Thread) const {
    return Thread.index() < Components.size() ? Components[Thread.index()] : 0;
  }

  /// Sets component c(τ) := Time.
  void set(ThreadId Thread, uint32_t Time);

  /// inc_τ: increments this clock's τ component by one.
  void increment(ThreadId Thread);

  /// c := c ⊔ Other (pointwise max). Returns true when any component grew
  /// — i.e. the representation changed. The chunk-memoization layer keys
  /// "this chunk was a state no-op" on exactly this signal.
  bool joinWith(const VectorClock &Other) {
#if defined(CRD_VECTORCLOCK_HAVE_SSE2)
    bool Changed = false;
    size_t N = Other.Components.size();
    if (N > Components.size()) {
      Components.resize(N);
      Changed = true; // Other is normalized, so its last component is > 0.
    }
    uint32_t *Dst = Components.data();
    const uint32_t *Src = Other.Components.data();
    size_t I = 0;
    if (N >= 4) {
      // Full 4-lane groups; the ≤ 3 trailing components go through the
      // scalar tail (lanes past size() hold garbage, never load them).
      __m128i Grew = _mm_setzero_si128();
      for (; I + 4 <= N; I += 4) {
        __m128i A =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(Dst + I));
        __m128i B =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(Src + I));
#if defined(__SSE4_1__)
        __m128i M = _mm_max_epu32(A, B);
#else
        const __m128i Bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
        __m128i BGtA = _mm_cmpgt_epi32(_mm_xor_si128(B, Bias),
                                       _mm_xor_si128(A, Bias));
        __m128i M = _mm_or_si128(_mm_and_si128(BGtA, B),
                                 _mm_andnot_si128(BGtA, A));
#endif
        Grew = _mm_or_si128(Grew, _mm_xor_si128(M, A));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(Dst + I), M);
      }
      Changed |= _mm_movemask_epi8(
                     _mm_cmpeq_epi32(Grew, _mm_setzero_si128())) != 0xFFFF;
    }
    for (; I != N; ++I)
      if (Src[I] > Dst[I]) {
        Dst[I] = Src[I];
        Changed = true;
      }
    // Join never introduces trailing zeros if neither operand had them, so
    // no normalize() is needed; both operands are kept normalized.
    return Changed;
#else
    return joinWithScalar(Other);
#endif
  }

  /// Scalar reference implementation of joinWith(); always compiled and
  /// bit-identical to the SIMD kernel (differentially tested).
  bool joinWithScalar(const VectorClock &Other) {
    bool Changed = false;
    if (Other.Components.size() > Components.size()) {
      Components.resize(Other.Components.size());
      Changed = true;
    }
    for (size_t I = 0, E = Other.Components.size(); I != E; ++I)
      if (Other.Components[I] > Components[I]) {
        Components[I] = Other.Components[I];
        Changed = true;
      }
    return Changed;
  }

  /// Returns c1 ⊔ c2 without mutating either operand.
  static VectorClock join(const VectorClock &A, const VectorClock &B);

  /// c1 ⊑ c2: pointwise less-or-equal.
  bool leq(const VectorClock &Other) const {
#if defined(CRD_VECTORCLOCK_HAVE_SSE2)
    size_t N = Components.size();
    if (N > Other.Components.size())
      return false; // Some component here is nonzero past Other's extent.
    const uint32_t *A = Components.data();
    const uint32_t *B = Other.Components.data();
    size_t I = 0;
    const __m128i Bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
    for (; I + 4 <= N; I += 4) {
      __m128i Va = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
      __m128i Vb = _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I));
      __m128i AGtB = _mm_cmpgt_epi32(_mm_xor_si128(Va, Bias),
                                     _mm_xor_si128(Vb, Bias));
      if (_mm_movemask_epi8(AGtB) != 0)
        return false;
    }
    for (; I != N; ++I)
      if (A[I] > B[I])
        return false;
    return true;
#else
    return leqScalar(Other);
#endif
  }

  /// Scalar reference implementation of leq(); always compiled and
  /// bit-identical to the SIMD kernel (differentially tested).
  bool leqScalar(const VectorClock &Other) const {
    if (Components.size() > Other.Components.size())
      return false;
    for (size_t I = 0, E = Components.size(); I != E; ++I)
      if (Components[I] > Other.Components[I])
        return false;
    return true;
  }

  /// True when neither c1 ⊑ c2 nor c2 ⊑ c1: events with such clocks may
  /// happen in parallel (the ‖ relation).
  bool concurrentWith(const VectorClock &Other) const {
    return !leq(Other) && !Other.leq(*this);
  }

  /// True when every component is zero.
  bool isBottom() const { return Components.empty(); }

  /// Number of stored (non-implicit) components.
  size_t size() const { return Components.size(); }

  friend bool operator==(const VectorClock &A, const VectorClock &B) {
    return A.Components == B.Components;
  }
  friend bool operator!=(const VectorClock &A, const VectorClock &B) {
    return !(A == B);
  }

  /// Renders e.g. ⟨3,0,1⟩ as "<3,0,1>".
  std::string toString() const;

private:
  void normalize();

  /// Most traces sync across a handful of threads, so 8 inline components
  /// keep clock copies (race snapshots, Table 1 lock clocks, shard batch
  /// forwarding) off the allocator entirely.
  SmallVec<uint32_t, 8> Components;
};

std::ostream &operator<<(std::ostream &OS, const VectorClock &VC);

} // namespace crd

#endif // CRD_SUPPORT_VECTORCLOCK_H
