//===- serve/Server.cpp - Multi-tenant detection daemon ----------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "support/Metrics.h"

#include <algorithm>
#include <cerrno>
#include <set>
#include <cstring>
#include <ostream>
#include <sstream>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace crd;
using namespace crd::serve;

namespace {

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

void closeIfOpen(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

} // namespace

Server::Server(ServeOptions Opts) : Opts(std::move(Opts)) {
  if (this->Opts.Workers == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    this->Opts.Workers = HW ? HW : 2;
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    WorkersStop = true;
  }
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  for (Conn &C : Conns)
    closeIfOpen(C.Fd);
  closeIfOpen(UnixFd);
  closeIfOpen(TcpFd);
  closeIfOpen(WakeRead);
  int W = WakeWrite.exchange(-1);
  if (W >= 0)
    ::close(W);
  if (!Opts.UnixPath.empty())
    ::unlink(Opts.UnixPath.c_str());
}

bool Server::start(std::string &Error) {
  if (Opts.UnixPath.empty() && Opts.TcpPort < 0) {
    Error = "no listener configured (need a socket path or a TCP port)";
    return false;
  }
  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  WakeRead = Pipe[0];
  WakeWrite.store(Pipe[1]);
  setNonBlocking(WakeRead);
  setNonBlocking(Pipe[1]);

  if (!Opts.UnixPath.empty()) {
    if (Opts.UnixPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
      Error = "socket path too long: " + Opts.UnixPath;
      return false;
    }
    UnixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (UnixFd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    ::unlink(Opts.UnixPath.c_str()); // Replace a stale socket file.
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Opts.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    if (::bind(UnixFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
            0 ||
        ::listen(UnixFd, 128) != 0) {
      Error = "cannot listen on " + Opts.UnixPath + ": " +
              std::strerror(errno);
      closeIfOpen(UnixFd);
      return false;
    }
    setNonBlocking(UnixFd);
  }

  if (Opts.TcpPort >= 0) {
    TcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (TcpFd < 0) {
      Error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int One = 1;
    ::setsockopt(TcpFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // Loopback only.
    Addr.sin_port = htons(static_cast<uint16_t>(Opts.TcpPort));
    if (::bind(TcpFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
            0 ||
        ::listen(TcpFd, 128) != 0) {
      Error = "cannot listen on tcp port " + std::to_string(Opts.TcpPort) +
              ": " + std::strerror(errno);
      closeIfOpen(TcpFd);
      return false;
    }
    socklen_t Len = sizeof(Addr);
    if (::getsockname(TcpFd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
      BoundTcpPort = ntohs(Addr.sin_port);
    setNonBlocking(TcpFd);
  }

  StartNs = monotonicNs();
  Workers.reserve(Opts.Workers);
  for (unsigned I = 0; I != Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  return true;
}

void Server::requestDrain() {
  DrainRequested.store(true);
  wakeIo();
}

void Server::requestStop() {
  StopRequested.store(true);
  wakeIo();
}

void Server::wakeIo() {
  int Fd = WakeWrite.load();
  if (Fd >= 0) {
    char B = 'w';
    [[maybe_unused]] ssize_t N = ::write(Fd, &B, 1);
  }
}

void Server::workerLoop() {
  while (true) {
    std::shared_ptr<Session> S;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock, [this] { return WorkersStop || !Queue.empty(); });
      if (WorkersStop && Queue.empty())
        return;
      S = std::move(Queue.front());
      Queue.pop_front();
    }
    S->runWork();
    if (S->releaseWork())
      scheduleSession(S);
    wakeIo();
  }
}

void Server::scheduleSession(const std::shared_ptr<Session> &S) {
  if (!S->claimWork())
    return; // Already queued or running; releaseWork() will requeue.
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Queue.push_back(S);
  }
  QueueCv.notify_one();
}

void Server::collectSpans(Session &S) {
  if (!Opts.TraceSessions)
    return;
  std::vector<SessionSpan> Spans = S.takeSpans();
  std::lock_guard<std::mutex> Lock(StatsMu);
  if (Timeline.size() < 1u << 16)
    Timeline.insert(Timeline.end(), Spans.begin(), Spans.end());
}

void Server::acceptReady(int ListenFd) {
  while (true) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN (or a transient error): nothing more to accept.
    setNonBlocking(Fd);
    if (Opts.MaxSessions && Conns.size() >= Opts.MaxSessions) {
      std::string Line =
          "{\"type\":\"error\",\"reason\":\"server at session capacity (" +
          std::to_string(Opts.MaxSessions) + ")\"}\n";
      [[maybe_unused]] ssize_t N = ::write(Fd, Line.data(), Line.size());
      ::close(Fd);
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Totals.SessionsRejected;
      continue;
    }
    Conn C;
    C.Fd = Fd;
    C.Sess = std::make_shared<Session>(NextSessionId++, Opts.Limits,
                                       Opts.Provider, Opts.TraceSessions);
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Totals.SessionsOpened;
      Live[C.Sess->id()] = C.Sess;
    }
    Conns.push_back(std::move(C));
  }
}

void Server::readConn(Conn &C) {
  char Buf[65536];
  size_t Round = 0;
  while (Round < (1u << 20)) { // Fairness bound per poll round.
    ssize_t N = ::read(C.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Round += static_cast<size_t>(N);
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        Totals.BytesIn += static_cast<uint64_t>(N);
      }
      if (C.Sess->enqueueInput(Buf, static_cast<size_t>(N)))
        scheduleSession(C.Sess);
      if (C.Sess->readPaused())
        break; // Backpressure: leave the rest in the kernel buffer.
      continue;
    }
    if (N == 0) {
      C.ReadClosed = true;
      if (C.Sess->noteEof())
        scheduleSession(C.Sess);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      break;
    // Hard error: treat like a close; the session drains what it has.
    C.ReadClosed = true;
    if (C.Sess->noteEof())
      scheduleSession(C.Sess);
    break;
  }
}

void Server::flushConn(Conn &C) {
  if (C.OutPending.empty())
    C.OutPending = C.Sess->takeOutput();
  while (!C.OutPending.empty()) {
    ssize_t N = ::write(C.Fd, C.OutPending.data(), C.OutPending.size());
    if (N > 0) {
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        Totals.BytesOut += static_cast<uint64_t>(N);
      }
      C.OutPending.erase(0, static_cast<size_t>(N));
      if (C.OutPending.empty())
        C.OutPending = C.Sess->takeOutput();
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
      return;
    // Peer gone mid-reply: drop the rest; the close path tallies below.
    C.OutPending.clear();
    C.Sess->killWithError("client hung up");
    (void)C.Sess->takeOutput();
    return;
  }
}

void Server::closeConn(size_t Index) {
  Conn &C = Conns[Index];
  SessionMetricsSnapshot S = C.Sess->metricsSnapshot();
  collectSpans(*C.Sess);
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Totals.SessionsClosed;
    if (std::string_view(S.State) == "failed")
      ++Totals.SessionsFailed;
    Totals.EventsTotal += S.Events;
    Totals.RacesTotal += S.Races;
    Totals.DroppedChunksTotal += S.DroppedChunks;
    Live.erase(C.Sess->id());
  }
  closeIfOpen(C.Fd);
  Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(Index));
}

void Server::beginDrain() {
  if (Draining)
    return;
  Draining = true;
  closeIfOpen(UnixFd);
  closeIfOpen(TcpFd);
  for (Conn &C : Conns) {
    if (!C.ReadClosed) {
      ::shutdown(C.Fd, SHUT_RD);
      C.ReadClosed = true;
    }
    if (C.Sess->requestDrain())
      scheduleSession(C.Sess);
    else if (!C.Sess->done())
      scheduleSession(C.Sess); // EOF already noted; make sure it runs.
  }
}

void Server::sweepIdle(uint64_t NowNs) {
  if (!Opts.IdleTimeoutMs)
    return;
  uint64_t LimitNs = Opts.IdleTimeoutMs * 1000000ull;
  for (Conn &C : Conns) {
    if (C.Sess->done())
      continue;
    uint64_t Last = C.Sess->lastActivityNs();
    if (NowNs > Last && NowNs - Last > LimitNs) {
      C.Sess->killWithError(
          "session idle for longer than " +
          std::to_string(Opts.IdleTimeoutMs) +
          " ms (daemon --idle-timeout); reconnect to continue");
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Totals.SessionsTimedOut;
      ++Totals.SessionsFailed;
    }
  }
}

void Server::run() {
  std::vector<pollfd> Fds;
  while (true) {
    if (StopRequested.load())
      break;
    if (DrainRequested.load())
      beginDrain();
    if (Draining && Conns.empty())
      break;
    ioRound(Fds);
  }
  // Tear down the pool before run() returns so detection is quiesced and
  // the timeline/metrics are complete for the caller.
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    WorkersStop = true;
  }
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  Workers.clear();
  while (!Conns.empty())
    closeConn(Conns.size() - 1);
}

void Server::ioRound(std::vector<pollfd> &Fds) {
  Fds.clear();
  Fds.push_back({WakeRead, POLLIN, 0});
  size_t UnixIdx = SIZE_MAX, TcpIdx = SIZE_MAX;
  if (UnixFd >= 0) {
    UnixIdx = Fds.size();
    Fds.push_back({UnixFd, POLLIN, 0});
  }
  if (TcpFd >= 0) {
    TcpIdx = Fds.size();
    Fds.push_back({TcpFd, POLLIN, 0});
  }
  size_t ConnBase = Fds.size();
  for (Conn &C : Conns) {
    short Events = 0;
    if (!C.ReadClosed && !C.Sess->readPaused())
      Events |= POLLIN;
    if (!C.OutPending.empty() || C.Sess->hasOutput())
      Events |= POLLOUT;
    Fds.push_back({C.Fd, Events, 0});
  }

  int TimeoutMs = -1;
  if (Opts.IdleTimeoutMs)
    TimeoutMs = static_cast<int>(
        std::min<uint64_t>(1000, std::max<uint64_t>(10, Opts.IdleTimeoutMs / 4)));
  int N = ::poll(Fds.data(), Fds.size(), TimeoutMs);
  if (N < 0 && errno != EINTR)
    return;

  if (Fds[0].revents & POLLIN) {
    char Buf[256];
    while (::read(WakeRead, Buf, sizeof(Buf)) > 0) {
    }
  }
  if (UnixIdx != SIZE_MAX && (Fds[UnixIdx].revents & POLLIN))
    acceptReady(UnixFd);
  if (TcpIdx != SIZE_MAX && (Fds[TcpIdx].revents & POLLIN))
    acceptReady(TcpFd);

  // Status requests are answered by the I/O thread — it owns the table.
  for (Conn &C : Conns)
    if (C.Sess->statusRequested()) {
      std::ostringstream OS;
      writeStatusJson(OS);
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Totals.StatusRequests;
      }
      C.Sess->deliverStatus(OS.str());
    }

  // Reads/writes. The fd array and Conns were parallel when poll() was
  // armed; accepts only append, so indexes below ConnBase + old size
  // still line up.
  size_t Polled = Fds.size() - ConnBase;
  for (size_t I = 0; I != Polled; ++I) {
    Conn &C = Conns[I];
    short Re = Fds[ConnBase + I].revents;
    if (Re & (POLLIN | POLLHUP | POLLERR))
      if (!C.ReadClosed)
        readConn(C);
    flushConn(C); // POLLOUT, or new output a worker queued.
  }

  sweepIdle(monotonicNs());

  // Close what is finished (done + everything flushed), back to front so
  // indexes stay valid.
  for (size_t I = Conns.size(); I != 0; --I) {
    Conn &C = Conns[I - 1];
    if (C.Sess->done() && C.OutPending.empty() && !C.Sess->hasOutput())
      closeConn(I - 1);
  }
}

ServeMetrics Server::metricsSnapshot() {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ServeMetrics M = Totals;
  M.SessionsActive = Live.size();
  for (const auto &Entry : Live) {
    SessionMetricsSnapshot S = Entry.second->metricsSnapshot();
    M.EventsTotal += S.Events;
    M.RacesTotal += S.Races;
    M.DroppedChunksTotal += S.DroppedChunks;
    M.Sessions.push_back(S);
  }
  return M;
}

void Server::writeStatusJson(std::ostream &OS) {
  ServeMetrics M = metricsSnapshot();
  uint64_t Now = monotonicNs();
  metrics::JsonWriter W(OS);
  W.beginObject();
  W.field("uptime_ms", static_cast<uint64_t>((Now - StartNs) / 1000000));
  W.field("workers", static_cast<uint64_t>(Opts.Workers));
  W.field("sessions_opened", M.SessionsOpened);
  W.field("sessions_closed", M.SessionsClosed);
  W.field("sessions_active", M.SessionsActive);
  W.field("sessions_failed", M.SessionsFailed);
  W.field("sessions_timed_out", M.SessionsTimedOut);
  W.field("sessions_rejected", M.SessionsRejected);
  W.field("status_requests", M.StatusRequests);
  W.field("bytes_in", M.BytesIn);
  W.field("bytes_out", M.BytesOut);
  W.field("events_total", M.EventsTotal);
  W.field("races_total", M.RacesTotal);
  W.field("dropped_chunks_total", M.DroppedChunksTotal);
  W.key("sessions");
  W.beginArray();
  for (const SessionMetricsSnapshot &S : M.Sessions) {
    W.beginObject();
    W.field("session", S.Id);
    W.field("state", S.State);
    W.field("backend", S.Backend);
    W.field("memo", S.Memo);
    W.field("events", S.Events);
    W.field("races", S.Races);
    W.field("bytes_in", S.BytesIn);
    W.field("buffered_bytes", S.BufferedBytes);
    W.field("footprint_bytes", S.FootprintBytes);
    W.field("dropped_chunks", S.DroppedChunks);
    W.field("dropped_bytes", S.DroppedBytes);
    W.field("objects_died", S.ObjectsDied);
    W.field("active_points", S.ActivePoints);
    W.field("pump_rounds", S.PumpRounds);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  OS << '\n';
}

void Server::writeChromeTrace(std::ostream &OS) {
  std::vector<SessionSpan> Spans;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    Spans = Timeline;
    for (const auto &Entry : Live) {
      std::vector<SessionSpan> More = Entry.second->takeSpans();
      Spans.insert(Spans.end(), More.begin(), More.end());
    }
  }
  std::sort(Spans.begin(), Spans.end(),
            [](const SessionSpan &A, const SessionSpan &B) {
              return A.StartNs < B.StartNs;
            });
  OS << "{\"traceEvents\":[";
  bool First = true;
  std::set<uint64_t> Named;
  for (const SessionSpan &S : Spans) {
    if (Named.insert(S.SessionId).second) {
      // One thread_name metadata row per session, on first sight.
      if (!First)
        OS << ",";
      First = false;
      OS << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << S.SessionId
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"session "
         << S.SessionId << "\"}}";
    }
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << S.SessionId
       << ",\"name\":\"pump\",\"ts\":" << (S.StartNs - StartNs) / 1000
       << ",\"dur\":" << S.DurNs / 1000 << ",\"args\":{\"events\":"
       << S.Events << "}}";
  }
  OS << "]}\n";
}
