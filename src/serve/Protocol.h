//===- serve/Protocol.h - Detection daemon wire protocol --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `crd serve` client/server protocol (docs/serve.md). A connection
/// opens with one newline-terminated text handshake naming the protocol
/// version and the session's detector configuration (or requesting a
/// status snapshot), then switches to binary envelope frames:
///
///   frame := type:u8  length:u32le  body[length]
///
///   'W'  wire bytes — a slice of a binary trace stream (WireFormat.h).
///        Slicing is arbitrary: the session reassembles file/chunk
///        headers and only ever feeds whole chunks to its decoder.
///   'D'  die notices — length/4 object ids (u32le each), the client's
///        signal that those objects are dead (paper §5.3) so per-object
///        detector state can be reclaimed.
///   'E'  end of trace (empty body). A shutdown(SHUT_WR) half-close is
///        accepted as an implicit 'E'.
///
/// Replies are line-delimited JSON on the same socket: a `hello` line
/// acknowledging the handshake, a `race`/`violation` line per finding as
/// it is detected, and a final `summary` (or `error`) line, after which
/// the server closes the connection. The race text is the same rendering
/// `crd check` prints, so byte-comparing reply lines against batch output
/// is the cross-session-interference test.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SERVE_PROTOCOL_H
#define CRD_SERVE_PROTOCOL_H

#include "wire/StreamPipeline.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace crd {
namespace serve {

/// First token of every handshake line; bump the suffix on breaking
/// protocol changes.
inline constexpr char ProtocolTag[] = "crd-serve/1";

/// Envelope frame types ('W'/'D'/'E' above).
enum class FrameType : uint8_t {
  Wire = 'W',
  Died = 'D',
  End = 'E',
};

/// type:u8 + length:u32le.
inline constexpr size_t FrameHeaderSize = 5;

/// Upper bound on one frame body; matches the wire format's chunk payload
/// ceiling so a maximal chunk still fits one frame. Larger lengths are
/// malformed (they would commit the session to unbounded buffering).
inline constexpr uint32_t MaxFrameBody = 64u << 20;

/// Everything a handshake line can say.
struct Handshake {
  /// `crd-serve/1 status`: no detection session — the server replies with
  /// the aggregate + per-session metrics document and closes.
  bool Status = false;
  wire::Backend TheBackend = wire::Backend::Sequential;
  unsigned Shards = 0;     ///< parallel backend worker shards (0 = cores).
  size_t BatchSize = 4096; ///< parallel backend batch granularity.
  wire::MemoMode Memo = wire::MemoMode::Off;
};

/// Parses `crd-serve/1 [status] [detector=...] [shards=N] [batch=N]
/// [memo=off|decode|full]` (tokens space-separated, any order after the
/// tag, \p Line without the trailing newline). Returns false with a
/// one-line reason in \p Error on any unknown token or value — a strict
/// grammar keeps version skew loud.
bool parseHandshake(std::string_view Line, Handshake &H, std::string &Error);

/// Client side: renders \p H as a handshake line (no trailing newline).
std::string renderHandshake(const Handshake &H);

/// Appends a frame header for a \p BodySize-byte body of type \p T.
void appendFrameHeader(std::string &Out, FrameType T, uint32_t BodySize);

/// Appends \p S with the JSON string escapes of RFC 8259 (quotes not
/// included) — reply lines are hand-assembled to stay single-line.
void appendJsonEscaped(std::string &Out, std::string_view S);

/// Canonical spellings shared with the `crd` CLI surface.
const char *backendToken(wire::Backend B);
const char *memoToken(wire::MemoMode M);

/// Monotonic nanoseconds for idle-timeout sweeps and timeline spans.
/// Deliberately not metrics::nowNs(): that compiles to a constant 0 in
/// CRD_METRICS=OFF builds, and session lifecycle must keep working there.
uint64_t monotonicNs();

} // namespace serve
} // namespace crd

#endif // CRD_SERVE_PROTOCOL_H
