//===- serve/Session.h - One client's detection session ---------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One connection's worth of daemon state: the protocol state machine
/// (handshake → streaming → done), the inner wire framing that turns an
/// arbitrarily sliced byte stream back into whole chunks, and the
/// per-session decode + detection pipeline. Everything that used to be
/// one-trace-per-process — the WireReader with its decode cache and spill
/// arenas, the StreamPipeline with its detector state and memo table, the
/// diagnostic engine — lives here, one instance per session, so N
/// sessions detect N traces with zero shared mutable state (the one
/// deliberate exception is the process-wide symbol table, which is
/// mutex-guarded, append-only and content-addressed: concurrent interning
/// can reorder ids but never change what a symbol spells, so it cannot
/// leak information across sessions).
///
/// Threading contract: the server's I/O thread calls the "I/O side"
/// methods; runWork() is called by pool workers, at most one at a time
/// per session (the server's scheduling flag guarantees it — detector
/// state itself is single-threaded and migrates between workers with the
/// queue's happens-before). The internal mutex only guards the thin
/// handoff buffers, never detection.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SERVE_SESSION_H
#define CRD_SERVE_SESSION_H

#include "ingest/Recorder.h"
#include "serve/Protocol.h"
#include "support/Diagnostics.h"
#include "wire/EventSource.h"
#include "wire/StreamPipeline.h"

#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <streambuf>
#include <string>
#include <vector>

namespace crd {
namespace serve {

/// Per-session resource bounds (the daemon's limits table, docs/serve.md).
struct SessionLimits {
  /// Bound on buffered-but-unprocessed input bytes. Crossing it triggers
  /// the backpressure policy: Block stops reading the socket (kernel flow
  /// control pushes back to the client), DropNewest discards whole chunks
  /// and counts them.
  size_t MaxBufferedBytes = 8u << 20;
  ingest::BackpressurePolicy Policy = ingest::BackpressurePolicy::Block;
  /// Ceiling on the session's resident footprint (buffers + decode arenas
  /// + memo caches); 0 = unlimited. A session that exceeds it is killed
  /// with an `error` line — client die notices ('D' frames) are the
  /// cooperative way to stay under it.
  size_t MaxSessionBytes = 0;
};

/// Point-in-time per-session counters for the status document.
struct SessionMetricsSnapshot {
  uint64_t Id = 0;
  const char *State = "handshake";
  const char *Backend = "";
  const char *Memo = "";
  uint64_t Events = 0;
  uint64_t Races = 0;         ///< Findings of whichever backend runs.
  uint64_t BytesIn = 0;       ///< Raw socket bytes accepted.
  uint64_t BufferedBytes = 0; ///< Input accepted but not yet detected.
  uint64_t FootprintBytes = 0;
  uint64_t DroppedChunks = 0; ///< DropNewest discards.
  uint64_t DroppedBytes = 0;
  uint64_t ObjectsDied = 0;   ///< Die notices applied.
  uint64_t ActivePoints = 0;  ///< Live per-object detector state (seq).
  uint64_t PumpRounds = 0;
};

/// One pump round for the --chrome-trace timeline (one row per session).
struct SessionSpan {
  uint64_t SessionId = 0;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  uint64_t Events = 0; ///< Pipeline events after the round.
};

/// A growable FIFO byte window exposed as a streambuf, so the session can
/// append complete wire chunks on one side while the WireReader pulls an
/// istream on the other. Reads past the end report EOF (never block);
/// append() + WireReader::resume() continue the stream. Consumed bytes
/// are compacted away once they outweigh the live window.
class ByteQueueBuf final : public std::streambuf {
public:
  void append(const char *Data, size_t N) {
    maybeCompact();
    Bytes.append(Data, N);
  }
  size_t pending() const { return Bytes.size() - Read; }
  size_t capacityBytes() const { return Bytes.capacity(); }

protected:
  int underflow() override {
    return Read < Bytes.size() ? traits_type::to_int_type(Bytes[Read])
                               : traits_type::eof();
  }
  int uflow() override {
    return Read < Bytes.size() ? traits_type::to_int_type(Bytes[Read++])
                               : traits_type::eof();
  }
  std::streamsize xsgetn(char *S, std::streamsize N) override {
    size_t Take = std::min(static_cast<size_t>(N), pending());
    std::char_traits<char>::copy(S, Bytes.data() + Read, Take);
    Read += Take;
    return static_cast<std::streamsize>(Take);
  }
  std::streamsize showmanyc() override {
    return static_cast<std::streamsize>(pending());
  }

private:
  void maybeCompact() {
    if (Read > (1u << 16) && Read > Bytes.size() / 2) {
      Bytes.erase(0, Read);
      Read = 0;
    }
  }

  std::string Bytes;
  size_t Read = 0;
};

/// One connection's protocol + detection state. Created by the server on
/// accept; destroyed by the I/O thread once done() and the output buffer
/// has drained to the socket.
class Session {
public:
  Session(uint64_t Id, const SessionLimits &Limits,
          const AccessPointProvider *Provider, bool TraceSpans);
  ~Session();

  uint64_t id() const { return Id; }

  //===--------------------------------------------------------------------===//
  // I/O-thread side.
  //===--------------------------------------------------------------------===//

  /// Appends raw socket bytes; returns true when the session now has work
  /// for a pool worker.
  bool enqueueInput(const char *Data, size_t N);

  /// Peer half-closed (or closed) its write side: end of trace once the
  /// buffered input is processed.
  bool noteEof();

  /// Server drain (SIGTERM): finish what is buffered, then summarize —
  /// same path as a client 'E', so drained sessions still get their
  /// complete race report.
  bool requestDrain() { return noteEof(); }

  /// Kill paths that bypass the worker: idle timeout, server overload.
  /// Emits an `error` line and marks the session done.
  void killWithError(std::string_view Reason);

  /// Moves out whatever reply bytes are ready for the socket.
  std::string takeOutput();
  bool hasOutput() const;

  /// Finished (summary or error emitted). The connection closes once the
  /// remaining output flushes.
  bool done() const;

  /// Block policy: true while the input backlog is over the cap, i.e. the
  /// server must stop polling this connection for reads.
  bool readPaused() const;

  /// True once a `status` handshake arrived: the server (owner of the
  /// session table) writes the document and closes.
  bool statusRequested() const;

  /// The server's reply to a status request: queues the document and
  /// marks the session done (the connection closes once it flushes).
  void deliverStatus(std::string Doc);

  /// nowNs() of the last input/progress, for idle-timeout sweeps.
  uint64_t lastActivityNs() const;

  SessionMetricsSnapshot metricsSnapshot() const;

  /// Drains the recorded chrome-trace spans (TraceSpans sessions only).
  std::vector<SessionSpan> takeSpans();

  /// Scheduling handshake with the server's work queue: claim() marks the
  /// session queued and returns false if it already was; release()
  /// un-marks it and returns true if more input arrived meanwhile (the
  /// caller requeues). Guarded by the session mutex so an I/O-thread
  /// enqueue racing a worker finish never strands input.
  bool claimWork();
  bool releaseWork();

  //===--------------------------------------------------------------------===//
  // Worker side (one worker at a time).
  //===--------------------------------------------------------------------===//

  /// Processes everything buffered: handshake, envelope frames, chunk
  /// reassembly, pipeline pump, reply emission.
  void runWork();

private:
  enum class State { Handshake, Streaming, Done };

  // All called on the worker, lock-free (fields only the worker touches).
  void processPending();
  bool handleHandshake();
  bool handleFrame(FrameType T, std::string_view Body);
  bool splitWireBytes(std::string_view Data);
  void pumpPipeline();
  void finishTrace();
  void failSession(std::string_view Reason);
  void emitLine(std::string Line);
  void emitSummary();
  size_t footprintBytes() const;
  bool overFootprintCeiling();

  const uint64_t Id;
  const SessionLimits Limits;
  const AccessPointProvider *const Provider;
  const bool TraceSpans;

  /// Handoff state (guarded by Mu): raw socket bytes in, reply bytes out,
  /// EOF/done/scheduled flags, counters the I/O thread snapshots.
  mutable std::mutex Mu;
  std::string RawIn;
  std::string OutBuf;
  bool EofSeen = false;
  bool EofHandled = false;
  bool DoneFlag = false;
  bool FailedFlag = false;
  bool StatusFlag = false;
  bool Scheduled = false;
  uint64_t BytesIn = 0;
  uint64_t LastActivityNs = 0;
  uint64_t WorkerBufferedBytes = 0; ///< Pending+WireBuf+Queue, post-round.
  SessionMetricsSnapshot Snapshot;  ///< Re-published after every round.
  std::vector<SessionSpan> Spans;

  /// Worker-only protocol state.
  State St = State::Handshake;
  std::string Pending;  ///< Raw bytes not yet framed (handshake + frames).
  std::string WireBuf;  ///< 'W' bodies not yet split into whole chunks.
  bool SawFileHeader = false;
  uint8_t WireFlags = 0;
  uint64_t ObjectsDied = 0;
  uint64_t DroppedChunks = 0;
  uint64_t DroppedBytes = 0;
  uint64_t PumpRounds = 0;
  uint64_t RaceLines = 0;
  uint64_t ViolationLines = 0;

  /// Worker-only detection state, constructed at handshake (pipeline) and
  /// at first whole file header (reader/source).
  Handshake Config;
  DiagnosticEngine Diags;
  ByteQueueBuf Queue;
  std::istream QueueStream;
  std::unique_ptr<wire::StreamPipeline> Pipeline;
  std::unique_ptr<wire::BinaryStreamSource> Source;
};

} // namespace serve
} // namespace crd

#endif // CRD_SERVE_SESSION_H
