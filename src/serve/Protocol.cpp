//===- serve/Protocol.cpp - Detection daemon wire protocol -------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <chrono>
#include <cstdio>

using namespace crd;
using namespace crd::serve;

namespace {

/// Splits off the next space-separated token of \p Rest.
std::string_view nextToken(std::string_view &Rest) {
  while (!Rest.empty() && Rest.front() == ' ')
    Rest.remove_prefix(1);
  size_t End = Rest.find(' ');
  std::string_view Tok = Rest.substr(0, End);
  Rest.remove_prefix(End == std::string_view::npos ? Rest.size() : End);
  return Tok;
}

bool parseUnsigned(std::string_view V, uint64_t &Out) {
  if (V.empty() || V.size() > 12)
    return false;
  Out = 0;
  for (char C : V) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

} // namespace

uint64_t serve::monotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char *serve::backendToken(wire::Backend B) {
  switch (B) {
  case wire::Backend::Sequential:
    return "seq";
  case wire::Backend::Parallel:
    return "parallel";
  case wire::Backend::FastTrack:
    return "fasttrack";
  case wire::Backend::Atomicity:
    return "atomicity";
  }
  return "seq";
}

const char *serve::memoToken(wire::MemoMode M) {
  switch (M) {
  case wire::MemoMode::Off:
    return "off";
  case wire::MemoMode::Decode:
    return "decode";
  case wire::MemoMode::Full:
    return "full";
  }
  return "off";
}

bool serve::parseHandshake(std::string_view Line, Handshake &H,
                           std::string &Error) {
  // Tolerate a trailing '\r' so `nc` users on CRLF terminals still parse.
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  if (nextToken(Line) != ProtocolTag) {
    Error = std::string("handshake must open with '") + ProtocolTag + "'";
    return false;
  }
  H = Handshake();
  for (std::string_view Tok = nextToken(Line); !Tok.empty();
       Tok = nextToken(Line)) {
    if (Tok == "status") {
      H.Status = true;
      continue;
    }
    size_t Eq = Tok.find('=');
    std::string_view Key = Tok.substr(0, Eq);
    std::string_view Val =
        Eq == std::string_view::npos ? std::string_view() : Tok.substr(Eq + 1);
    if (Key == "detector") {
      if (Val == "seq")
        H.TheBackend = wire::Backend::Sequential;
      else if (Val == "parallel")
        H.TheBackend = wire::Backend::Parallel;
      else if (Val == "fasttrack")
        H.TheBackend = wire::Backend::FastTrack;
      else if (Val == "atomicity")
        H.TheBackend = wire::Backend::Atomicity;
      else {
        Error = "unknown detector '" + std::string(Val) + "'";
        return false;
      }
    } else if (Key == "shards") {
      uint64_t N = 0;
      if (!parseUnsigned(Val, N) || N > 1024) {
        Error = "shards expects an integer";
        return false;
      }
      H.Shards = static_cast<unsigned>(N);
    } else if (Key == "batch") {
      uint64_t N = 0;
      if (!parseUnsigned(Val, N) || N == 0 || N > (1u << 24)) {
        Error = "batch expects a positive integer";
        return false;
      }
      H.BatchSize = static_cast<size_t>(N);
    } else if (Key == "memo") {
      if (Val == "off")
        H.Memo = wire::MemoMode::Off;
      else if (Val == "decode")
        H.Memo = wire::MemoMode::Decode;
      else if (Val == "full")
        H.Memo = wire::MemoMode::Full;
      else {
        Error = "unknown memo mode '" + std::string(Val) + "'";
        return false;
      }
    } else {
      Error = "unknown handshake token '" + std::string(Tok) + "'";
      return false;
    }
  }
  return true;
}

std::string serve::renderHandshake(const Handshake &H) {
  std::string Line = ProtocolTag;
  if (H.Status) {
    Line += " status";
    return Line;
  }
  Line += " detector=";
  Line += backendToken(H.TheBackend);
  if (H.Shards) {
    Line += " shards=";
    Line += std::to_string(H.Shards);
  }
  Line += " batch=";
  Line += std::to_string(H.BatchSize);
  Line += " memo=";
  Line += memoToken(H.Memo);
  return Line;
}

void serve::appendFrameHeader(std::string &Out, FrameType T,
                              uint32_t BodySize) {
  Out.push_back(static_cast<char>(T));
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((BodySize >> (8 * I)) & 0xff));
}

void serve::appendJsonEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
      break;
    }
  }
}
