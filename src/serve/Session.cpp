//===- serve/Session.cpp - One client's detection session --------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Session.h"

#include "support/Metrics.h"
#include "wire/WireFormat.h"

#include <algorithm>
#include <sstream>

using namespace crd;
using namespace crd::serve;

namespace {

/// Diagnostics arrive multi-line ("error: ...\n"); reply lines must stay
/// single-line JSON, so collapse to the first line without the severity
/// prefix the client would just re-add.
std::string firstDiagnosticLine(const DiagnosticEngine &Diags) {
  std::string Text = Diags.toString();
  size_t End = Text.find('\n');
  if (End != std::string::npos)
    Text.resize(End);
  if (Text.rfind("error: ", 0) == 0)
    Text.erase(0, 7);
  return Text;
}

} // namespace

Session::Session(uint64_t Id, const SessionLimits &Limits,
                 const AccessPointProvider *Provider, bool TraceSpans)
    : Id(Id), Limits(Limits), Provider(Provider), TraceSpans(TraceSpans),
      QueueStream(&Queue) {
  LastActivityNs = monotonicNs();
  Snapshot.Id = Id;
}

Session::~Session() = default;

bool Session::enqueueInput(const char *Data, size_t N) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (DoneFlag)
    return false;
  RawIn.append(Data, N);
  BytesIn += N;
  LastActivityNs = monotonicNs();
  return true;
}

bool Session::noteEof() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (DoneFlag || EofSeen)
    return false;
  EofSeen = true;
  LastActivityNs = monotonicNs();
  return true;
}

void Session::killWithError(std::string_view Reason) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (DoneFlag)
    return;
  std::string Line = "{\"type\":\"error\",\"session\":";
  Line += std::to_string(Id);
  Line += ",\"reason\":\"";
  appendJsonEscaped(Line, Reason);
  Line += "\"}\n";
  OutBuf += Line;
  DoneFlag = true;
}

std::string Session::takeOutput() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = std::move(OutBuf);
  OutBuf.clear();
  return Out;
}

bool Session::hasOutput() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return !OutBuf.empty();
}

bool Session::done() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return DoneFlag;
}

bool Session::readPaused() const {
  if (Limits.Policy != ingest::BackpressurePolicy::Block)
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  return RawIn.size() + WorkerBufferedBytes > Limits.MaxBufferedBytes;
}

bool Session::statusRequested() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return StatusFlag && !DoneFlag;
}

uint64_t Session::lastActivityNs() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return LastActivityNs;
}

SessionMetricsSnapshot Session::metricsSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  SessionMetricsSnapshot S = Snapshot;
  S.BytesIn = BytesIn;
  S.BufferedBytes = RawIn.size() + WorkerBufferedBytes;
  if (FailedFlag)
    S.State = "failed";
  else if (DoneFlag)
    S.State = "done";
  return S;
}

std::vector<SessionSpan> Session::takeSpans() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<SessionSpan> Out = std::move(Spans);
  Spans.clear();
  return Out;
}

bool Session::claimWork() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Scheduled)
    return false;
  Scheduled = true;
  return true;
}

bool Session::releaseWork() {
  std::lock_guard<std::mutex> Lock(Mu);
  Scheduled = false;
  // Requeue when input (or an EOF the worker's snapshot missed) arrived
  // while the round was running.
  return !DoneFlag && (!RawIn.empty() || (EofSeen && !EofHandled));
}

void Session::deliverStatus(std::string Doc) {
  std::lock_guard<std::mutex> Lock(Mu);
  StatusFlag = false;
  if (DoneFlag)
    return;
  OutBuf += Doc;
  DoneFlag = true;
}

void Session::emitLine(std::string Line) {
  Line += '\n';
  std::lock_guard<std::mutex> Lock(Mu);
  if (DoneFlag)
    return; // Killed from the I/O side; the error line already went out.
  OutBuf += Line;
}

void Session::failSession(std::string_view Reason) {
  if (St == State::Done)
    return;
  std::string Line = "{\"type\":\"error\",\"session\":";
  Line += std::to_string(Id);
  Line += ",\"reason\":\"";
  appendJsonEscaped(Line, Reason);
  Line += "\"}";
  emitLine(std::move(Line));
  St = State::Done;
  std::lock_guard<std::mutex> Lock(Mu);
  DoneFlag = true;
  FailedFlag = true;
}

void Session::runWork() {
  bool Eof;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Pending += RawIn;
    RawIn.clear();
    Eof = EofSeen;
  }
  processPending();
  bool StatusPending;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    StatusPending = StatusFlag;
  }
  // A status session stays in Handshake state while it waits for the I/O
  // thread to write the document; EOF from the client is expected there
  // (it has nothing more to say), not a truncated handshake.
  if (Eof && St != State::Done && !StatusPending) {
    if (St == State::Handshake)
      failSession("connection closed before a complete handshake line");
    else if (!Pending.empty())
      failSession("connection closed inside an envelope frame");
    else
      finishTrace();
  }

  // Publish the round's snapshot for the I/O thread's status document and
  // backpressure checks.
  SessionMetricsSnapshot S;
  S.Id = Id;
  S.State = St == State::Handshake ? "handshake"
            : St == State::Streaming ? "streaming"
                                     : "done";
  if (Pipeline) {
    S.Backend = backendToken(Config.TheBackend);
    S.Memo = memoToken(Config.Memo);
    S.Events = Pipeline->eventsProcessed();
    wire::StreamSummary Sum = Pipeline->summary();
    S.Races = Sum.Races + Sum.MemoryRaces + Sum.Violations;
    if (const CommutativityRaceDetector *Seq = Pipeline->sequentialDetector())
      S.ActivePoints = Seq->activePointCount();
    if (const ParallelDetector *Par = Pipeline->parallelDetector())
      S.ActivePoints = Par->activePointCount();
  }
  S.FootprintBytes = footprintBytes();
  S.DroppedChunks = DroppedChunks;
  S.DroppedBytes = DroppedBytes;
  S.ObjectsDied = ObjectsDied;
  S.PumpRounds = PumpRounds;
  std::lock_guard<std::mutex> Lock(Mu);
  Snapshot = S;
  if (FailedFlag)
    Snapshot.State = "failed";
  else if (DoneFlag)
    Snapshot.State = "done";
  else if (StatusFlag)
    Snapshot.State = "status";
  if (Eof)
    EofHandled = true;
  WorkerBufferedBytes = Pending.size() + WireBuf.size() + Queue.pending();
  LastActivityNs = monotonicNs();
}

void Session::processPending() {
  if (St == State::Handshake && !handleHandshake())
    return;
  if (St != State::Streaming) {
    Pending.clear();
    return;
  }

  size_t Pos = 0;
  while (St == State::Streaming && Pending.size() - Pos >= FrameHeaderSize) {
    const unsigned char *H =
        reinterpret_cast<const unsigned char *>(Pending.data() + Pos);
    char Type = static_cast<char>(H[0]);
    uint32_t Len = static_cast<uint32_t>(H[1]) |
                   (static_cast<uint32_t>(H[2]) << 8) |
                   (static_cast<uint32_t>(H[3]) << 16) |
                   (static_cast<uint32_t>(H[4]) << 24);
    if (Type != 'W' && Type != 'D' && Type != 'E') {
      failSession("unknown frame type");
      break;
    }
    if (Len > MaxFrameBody) {
      failSession("frame body of " + std::to_string(Len) +
                  " bytes exceeds the limit");
      break;
    }
    if (Pending.size() - Pos < FrameHeaderSize + Len)
      break; // Wait for the rest of the body.
    std::string_view Body(Pending.data() + Pos + FrameHeaderSize, Len);
    Pos += FrameHeaderSize + Len;
    if (!handleFrame(static_cast<FrameType>(Type), Body))
      break;
  }
  Pending.erase(0, Pos);
  if (St == State::Done)
    Pending.clear();
}

bool Session::handleHandshake() {
  size_t NL = Pending.find('\n');
  if (NL == std::string::npos) {
    if (Pending.size() > 4096)
      failSession("handshake line too long");
    return false;
  }
  std::string Error;
  if (!parseHandshake(std::string_view(Pending.data(), NL), Config, Error)) {
    failSession(Error);
    return false;
  }
  Pending.erase(0, NL + 1);
  if (Config.Status) {
    std::lock_guard<std::mutex> Lock(Mu);
    StatusFlag = true; // The server owns the table; it writes the doc.
    return false;
  }
  wire::PipelineOptions Opts;
  Opts.TheBackend = Config.TheBackend;
  Opts.Shards = Config.Shards;
  Opts.BatchSize = Config.BatchSize;
  Opts.Memo = Config.Memo;
  Pipeline = std::make_unique<wire::StreamPipeline>(Opts);
  if (Config.TheBackend != wire::Backend::FastTrack && Provider)
    Pipeline->setDefaultProvider(Provider);
  Pipeline->setRaceCallback([this](const CommutativityRace &R) {
    std::ostringstream OS;
    OS << R;
    std::string Line = "{\"type\":\"race\",\"index\":";
    Line += std::to_string(RaceLines++);
    Line += ",\"text\":\"";
    appendJsonEscaped(Line, OS.str());
    Line += "\"}";
    emitLine(std::move(Line));
  });
  Pipeline->setMemoryRaceCallback([this](const MemoryRace &R) {
    std::ostringstream OS;
    OS << R;
    std::string Line = "{\"type\":\"race\",\"index\":";
    Line += std::to_string(RaceLines++);
    Line += ",\"text\":\"";
    appendJsonEscaped(Line, OS.str());
    Line += "\"}";
    emitLine(std::move(Line));
  });
  std::string Hello = "{\"type\":\"hello\",\"session\":";
  Hello += std::to_string(Id);
  Hello += ",\"detector\":\"";
  Hello += backendToken(Config.TheBackend);
  Hello += "\",\"memo\":\"";
  Hello += memoToken(Config.Memo);
  Hello += "\"}";
  emitLine(std::move(Hello));
  St = State::Streaming;
  return true;
}

bool Session::handleFrame(FrameType T, std::string_view Body) {
  switch (T) {
  case FrameType::Wire:
    if (!splitWireBytes(Body))
      return false;
    pumpPipeline();
    return St == State::Streaming && !overFootprintCeiling();
  case FrameType::Died: {
    if (Body.size() % 4 != 0) {
      failSession("die notice body must be a multiple of 4 bytes");
      return false;
    }
    // Everything buffered ahead of the notice must reach the detector
    // first, or the reclamation would apply out of order.
    pumpPipeline();
    if (St != State::Streaming)
      return false;
    if (Pipeline) {
      const unsigned char *P =
          reinterpret_cast<const unsigned char *>(Body.data());
      for (size_t I = 0; I != Body.size(); I += 4) {
        uint32_t Obj = static_cast<uint32_t>(P[I]) |
                       (static_cast<uint32_t>(P[I + 1]) << 8) |
                       (static_cast<uint32_t>(P[I + 2]) << 16) |
                       (static_cast<uint32_t>(P[I + 3]) << 24);
        Pipeline->objectDied(ObjectId(Obj));
        ++ObjectsDied;
      }
    }
    return true;
  }
  case FrameType::End:
    finishTrace();
    return false;
  }
  failSession("unknown frame type");
  return false;
}

bool Session::splitWireBytes(std::string_view Data) {
  WireBuf.append(Data.data(), Data.size());
  size_t Pos = 0;
  bool Appended = false;
  while (true) {
    size_t Avail = WireBuf.size() - Pos;
    if (!SawFileHeader) {
      if (Avail < wire::FileHeaderSize)
        break;
      // Pass the header through verbatim and let the reader's canonical
      // validation diagnose bad magic/version/flags; the flags byte is all
      // the splitter needs for chunk-header geometry.
      WireFlags = static_cast<uint8_t>(WireBuf[Pos + 5]);
      Queue.append(WireBuf.data() + Pos, wire::FileHeaderSize);
      Pos += wire::FileHeaderSize;
      SawFileHeader = true;
      Source = std::make_unique<wire::BinaryStreamSource>(QueueStream, Diags);
      if (Source->failed()) {
        failSession(firstDiagnosticLine(Diags));
        break;
      }
      continue;
    }
    size_t HeaderSize = (WireFlags & wire::FlagChunkDigests)
                            ? wire::DigestChunkHeaderSize
                            : wire::ChunkHeaderSize;
    if (Avail < HeaderSize)
      break;
    const unsigned char *H =
        reinterpret_cast<const unsigned char *>(WireBuf.data() + Pos);
    uint32_t PayloadSize = static_cast<uint32_t>(H[0]) |
                           (static_cast<uint32_t>(H[1]) << 8) |
                           (static_cast<uint32_t>(H[2]) << 16) |
                           (static_cast<uint32_t>(H[3]) << 24);
    if (PayloadSize > wire::MaxChunkPayload) {
      // Feed just the header: the reader rejects the size before wanting
      // the payload, producing the canonical oversize diagnostic without
      // this session ever buffering toward the bogus length.
      Queue.append(WireBuf.data() + Pos, HeaderSize);
      Pos += HeaderSize;
      Appended = true;
      break;
    }
    if (Avail < HeaderSize + PayloadSize)
      break;
    if (Limits.Policy == ingest::BackpressurePolicy::DropNewest &&
        Queue.pending() > Limits.MaxBufferedBytes) {
      // Chunks are self-contained (per-chunk symbol tables, predictors
      // reset), so dropping whole ones keeps the remainder decodable —
      // the serve analogue of the ingest ring's DropNewest.
      ++DroppedChunks;
      DroppedBytes += HeaderSize + PayloadSize;
    } else {
      Queue.append(WireBuf.data() + Pos, HeaderSize + PayloadSize);
      Appended = true;
    }
    Pos += HeaderSize + PayloadSize;
  }
  WireBuf.erase(0, Pos);
  (void)Appended;
  return St == State::Streaming;
}

void Session::pumpPipeline() {
  if (!Source || !Pipeline || St != State::Streaming)
    return;
  if (Queue.pending() == 0 && PumpRounds != 0)
    return;
  uint64_t Start = TraceSpans ? monotonicNs() : 0;
  if (wire::WireReader *Reader = Source->memoReader())
    Reader->resume();
  Pipeline->pump(*Source);
  ++PumpRounds;
  if (TraceSpans) {
    SessionSpan Span;
    Span.SessionId = Id;
    Span.StartNs = Start;
    Span.DurNs = monotonicNs() - Start;
    Span.Events = Pipeline->eventsProcessed();
    std::lock_guard<std::mutex> Lock(Mu);
    if (Spans.size() < 4096)
      Spans.push_back(Span);
  }
  if (Source->failed())
    failSession(firstDiagnosticLine(Diags));
}

bool Session::overFootprintCeiling() {
  if (!Limits.MaxSessionBytes || St != State::Streaming)
    return false;
  size_t Footprint = footprintBytes();
  if (Footprint <= Limits.MaxSessionBytes)
    return false;
  failSession("session footprint of " + std::to_string(Footprint) +
              " bytes exceeds the ceiling of " +
              std::to_string(Limits.MaxSessionBytes) +
              " (send die notices to reclaim per-object state, or raise "
              "--session-cap)");
  return true;
}

size_t Session::footprintBytes() const {
  size_t Bytes = Pending.size() + WireBuf.size() + Queue.capacityBytes();
  if (Pipeline)
    Bytes += Pipeline->batchFootprint();
  if (Source) {
    wire::WireReaderStats RS = Source->reader().stats();
    Bytes += RS.ArenaPeakBytes + RS.MemoCacheBytes;
  }
  return Bytes;
}

void Session::finishTrace() {
  if (St != State::Streaming)
    return;
  if (!WireBuf.empty()) {
    failSession("wire stream ended inside a chunk (" +
                std::to_string(WireBuf.size()) + " dangling bytes)");
    return;
  }
  pumpPipeline();
  if (St != State::Streaming)
    return;
  if (Pipeline)
    Pipeline->finish();
  // Violations have no streaming callback; they surface here, before the
  // summary, exactly as `crd check` prints them.
  if (Pipeline)
    for (const AtomicityViolation &V : Pipeline->violations()) {
      std::ostringstream OS;
      OS << V;
      std::string Line = "{\"type\":\"violation\",\"index\":";
      Line += std::to_string(ViolationLines++);
      Line += ",\"text\":\"";
      appendJsonEscaped(Line, OS.str());
      Line += "\"}";
      emitLine(std::move(Line));
    }
  emitSummary();
  St = State::Done;
  std::lock_guard<std::mutex> Lock(Mu);
  DoneFlag = true;
}

void Session::emitSummary() {
  wire::StreamSummary Sum =
      Pipeline ? Pipeline->summary() : wire::StreamSummary();
  std::string Line = "{\"type\":\"summary\",\"session\":";
  Line += std::to_string(Id);
  Line += ",\"events\":" + std::to_string(Sum.Events);
  Line += ",\"races\":" + std::to_string(Sum.Races);
  Line += ",\"distinct_racy_objects\":" + std::to_string(Sum.DistinctRacyObjects);
  Line += ",\"memory_races\":" + std::to_string(Sum.MemoryRaces);
  Line += ",\"distinct_racy_vars\":" + std::to_string(Sum.DistinctRacyVars);
  Line += ",\"violations\":" + std::to_string(Sum.Violations);
  Line += ",\"objects_died\":" + std::to_string(ObjectsDied);
  Line += ",\"dropped_chunks\":" + std::to_string(DroppedChunks);
  Line += ",\"dropped_bytes\":" + std::to_string(DroppedBytes);
  Line += "}";
  emitLine(std::move(Line));
}
