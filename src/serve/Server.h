//===- serve/Server.h - Multi-tenant detection daemon -----------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `crd serve` daemon core: listeners (Unix-domain, optionally
/// loopback TCP), one poll-based I/O thread (the thread that calls
/// run()), and a shared pool of detection workers. Connections map 1:1
/// to Session objects; the I/O thread shuttles bytes between sockets and
/// sessions, and workers run each session's decode + detection rounds —
/// at most one worker per session at a time, so detector state never
/// needs a lock. An idle session holds no queue slot and no worker: its
/// cost is one pollfd entry and its retained buffers, which is how
/// hundreds of idle sessions cost ~nothing.
///
/// Shutdown: requestDrain() (the SIGTERM path; async-signal-safe) stops
/// accepting, treats every open connection as end-of-trace, lets the
/// workers finish the buffered input, and returns from run() once every
/// session has its summary flushed — a drained client cannot tell the
/// difference from sending 'E' itself. requestStop() abandons open work.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SERVE_SERVER_H
#define CRD_SERVE_SERVER_H

#include "serve/Session.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

struct pollfd; // <poll.h>; kept out of this header.

namespace crd {
namespace serve {

/// Daemon configuration (`crd serve` flags map onto this 1:1).
struct ServeOptions {
  std::string UnixPath; ///< Unix-domain listen path ("" = none).
  int TcpPort = -1;     ///< Loopback TCP port (-1 = none, 0 = ephemeral).
  unsigned Workers = 0; ///< Detection pool size (0 = hardware threads).
  uint64_t IdleTimeoutMs = 0; ///< Kill sessions idle this long (0 = never).
  size_t MaxSessions = 0;     ///< Reject accepts beyond this (0 = unlimited).
  SessionLimits Limits;       ///< Per-session bounds.
  bool TraceSessions = false; ///< Record per-session timeline spans.
  /// Commutativity spec for sessions (shared, read-only; FastTrack
  /// sessions ignore it). Must outlive the server.
  const AccessPointProvider *Provider = nullptr;
};

/// Aggregate + per-session counters behind the status document.
struct ServeMetrics {
  uint64_t SessionsOpened = 0;
  uint64_t SessionsClosed = 0;
  uint64_t SessionsActive = 0;
  uint64_t SessionsFailed = 0;   ///< Malformed input / ceilings / kills.
  uint64_t SessionsTimedOut = 0; ///< Subset of failed: idle-timeout kills.
  uint64_t SessionsRejected = 0; ///< Accepts refused by MaxSessions.
  uint64_t StatusRequests = 0;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t EventsTotal = 0; ///< Closed + live sessions.
  uint64_t RacesTotal = 0;
  uint64_t DroppedChunksTotal = 0;
  std::vector<SessionMetricsSnapshot> Sessions; ///< Live sessions only.
};

/// The daemon. Construct, start(), then run() on the serving thread.
class Server {
public:
  explicit Server(ServeOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listeners and spawns the worker pool. Returns false with a
  /// reason in \p Error (nothing half-started: failure cleans up).
  bool start(std::string &Error);

  /// The I/O loop; blocks until requestStop(), or requestDrain() plus the
  /// last session flushing. Call at most once, after start().
  void run();

  /// Async-signal-safe shutdown requests (SIGTERM → drain, SIGINT twice →
  /// stop is the CLI's convention).
  void requestDrain();
  void requestStop();

  /// The bound TCP port (meaningful after start() when TcpPort >= 0 —
  /// resolves an ephemeral 0 to the real port).
  int tcpPort() const { return BoundTcpPort; }

  /// Live counters; callable from any thread while run() executes.
  ServeMetrics metricsSnapshot();

  /// The status document (schema: docs/serve.md). Same bytes a `status`
  /// handshake gets on the socket.
  void writeStatusJson(std::ostream &OS);

  /// Chrome trace with one timeline row per session (TraceSessions runs;
  /// complete once run() returned).
  void writeChromeTrace(std::ostream &OS);

private:
  struct Conn {
    int Fd = -1;
    std::shared_ptr<Session> Sess;
    std::string OutPending; ///< Taken from the session, not yet written.
    bool ReadClosed = false;
  };

  void ioRound(std::vector<pollfd> &Fds);
  void acceptReady(int ListenFd);
  void readConn(Conn &C);
  void flushConn(Conn &C);
  void closeConn(size_t Index);
  void scheduleSession(const std::shared_ptr<Session> &S);
  void beginDrain();
  void sweepIdle(uint64_t NowNs);
  void wakeIo();
  void workerLoop();
  void collectSpans(Session &S);

  ServeOptions Opts;
  int UnixFd = -1;
  int TcpFd = -1;
  int BoundTcpPort = -1;
  int WakeRead = -1;
  std::atomic<int> WakeWrite{-1}; ///< Signal handlers write here.
  std::atomic<bool> DrainRequested{false};
  std::atomic<bool> StopRequested{false};
  bool Draining = false;
  uint64_t StartNs = 0;

  /// Connection table; I/O thread only.
  std::vector<Conn> Conns;
  uint64_t NextSessionId = 1;

  /// Work queue feeding the pool.
  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<std::shared_ptr<Session>> Queue;
  bool WorkersStop = false;
  std::vector<std::thread> Workers;

  /// Counters + live-session index, shared with metricsSnapshot callers.
  std::mutex StatsMu;
  ServeMetrics Totals; ///< Sessions vector unused here; filled on demand.
  std::map<uint64_t, std::shared_ptr<Session>> Live;
  std::vector<SessionSpan> Timeline;
};

} // namespace serve
} // namespace crd

#endif // CRD_SERVE_SERVER_H
