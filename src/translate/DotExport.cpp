//===- translate/DotExport.cpp - Graphviz export of representations ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "translate/DotExport.h"

#include <ostream>
#include <sstream>

using namespace crd;

/// Escapes double quotes and backslashes for a DOT string literal.
static std::string escape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

void crd::exportConflictGraph(std::ostream &OS,
                              const AccessPointProvider &Provider,
                              const std::string &Name) {
  OS << "graph \"" << escape(Name) << "\" {\n";
  OS << "  node [fontname=\"Helvetica\"];\n";
  for (uint32_t C = 0, E = static_cast<uint32_t>(Provider.numClasses());
       C != E; ++C) {
    OS << "  c" << C << " [label=\"" << escape(Provider.className(C))
       << "\", shape=" << (Provider.classCarriesValue(C) ? "box" : "ellipse")
       << "];\n";
  }
  for (uint32_t C = 0, E = static_cast<uint32_t>(Provider.numClasses());
       C != E; ++C) {
    for (uint32_t Partner : Provider.conflictsOf(C)) {
      // Emit each undirected edge once.
      if (Partner < C)
        continue;
      OS << "  c" << C << " -- c" << Partner;
      if (Provider.classCarriesValue(C) && Provider.classCarriesValue(Partner))
        OS << " [label=\"= value\"]";
      OS << ";\n";
    }
  }
  OS << "}\n";
}

std::string crd::conflictGraphToDot(const AccessPointProvider &Provider,
                                    const std::string &Name) {
  std::ostringstream OS;
  exportConflictGraph(OS, Provider, Name);
  return OS.str();
}
