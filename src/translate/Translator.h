//===- translate/Translator.h - ECL → access points (§6.2) ------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translation procedure of paper §6.2 from ECL commutativity
/// specifications to access point representations, plus the simplification
/// passes of appendix A.3.
///
/// For every method m the translator determines the relevant normalized LB
/// atoms B(Φ,m); an action's β vector is the bitmask of their truth values.
/// Raw access points ("slots") are laid out densely per (method, β mask,
/// position-or-ds). The conflict relation is computed by enumerating all
/// (β1, β2) pairs per method pair and simplifying the residual ϕ[β1;β2] to
/// its LS normal form (Lemma 6.4):
///
///   rule 1: residual ≡ false        → the two ds slots conflict
///   rule 2: residual has x_i ≠ y_j  → value slots (i, j) conflict on
///                                     equal values
///
/// Optimizer passes (appendix A.3):
///   * dropping:    projects each slot family's β mask onto the atoms that
///                  actually influence its conflicts (subsumes the
///                  consolidation step);
///   * replacement: merges congruent slots (identical conflict rows);
///   * cleanup:     deactivates slots that conflict with nothing.
///
/// The result is a TranslatedRep whose per-class conflict lists are bounded
/// by the specification size (Theorem 6.6), independent of the execution.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRANSLATE_TRANSLATOR_H
#define CRD_TRANSLATE_TRANSLATOR_H

#include "access/Provider.h"
#include "spec/Fragment.h"
#include "spec/Spec.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <vector>

namespace crd {

/// Which appendix A.3 passes to run. All enabled by default; disabling them
/// is useful for the ablation benchmarks and for testing pass-by-pass.
struct TranslationOptions {
  bool DropIrrelevantAtoms = true;
  bool MergeCongruentSlots = true;
  bool RemoveConflictFree = true;
};

/// Size accounting before/after each pass.
struct TranslationStats {
  size_t RawSlots = 0;
  size_t SlotsAfterDropping = 0;
  size_t ClassesAfterMerging = 0;
  size_t FinalActiveClasses = 0;
  size_t MaxConflictsPerClass = 0; ///< Theorem 6.6 bound witness.
};

/// Access point representation generated from an ECL specification.
class TranslatedRep : public AccessPointProvider {
public:
  size_t numClasses() const override { return Classes.size(); }
  bool classCarriesValue(uint32_t ClassId) const override;
  const std::vector<uint32_t> &conflictsOf(uint32_t ClassId) const override;
  void touches(const Action &A, std::vector<AccessPoint> &Out) const override;
  std::string_view className(uint32_t ClassId) const override;

  /// The β vector (as a bitmask over B(Φ,m)) of an action of method
  /// \p MethodIdx with flattened values \p Values. Exposed for tests that
  /// mirror the paper's worked example.
  uint32_t betaMask(uint32_t MethodIdx, std::span<const Value> Values) const;

  /// The normalized atoms B(Φ,m) of a method, in mask-bit order.
  const std::vector<CanonAtom> &methodAtoms(uint32_t MethodIdx) const;

  /// Number of methods (mirrors the source specification).
  size_t numMethods() const { return Methods.size(); }

private:
  friend class TranslatorImpl;

  static constexpr uint32_t NoClass = ~0u;

  struct MethodInfo {
    Symbol Name;
    uint32_t NumValues = 0;
    uint32_t SlotBase = 0; ///< First slot of this method's dense block.
    std::vector<CanonAtom> Atoms;
  };

  struct ClassInfo {
    bool CarriesValue = false;
    std::string Name;
  };

  /// Dense slot index of (method, mask, position); Pos == -1 means ds.
  uint32_t slotIndex(uint32_t MethodIdx, uint32_t Mask, int32_t Pos) const {
    const MethodInfo &M = Methods[MethodIdx];
    return M.SlotBase + Mask * (M.NumValues + 1) +
           static_cast<uint32_t>(Pos + 1);
  }

  std::vector<MethodInfo> Methods;
  std::map<Symbol, uint32_t> MethodIndexByName;
  std::vector<uint32_t> SlotToClass; ///< NoClass = never touched.
  std::vector<ClassInfo> Classes;
  std::vector<std::vector<uint32_t>> Conflicts;
};

/// Translates \p Spec (which must be in ECL) into an access point
/// representation. On failure (non-ECL formula, too many atoms per method)
/// reports into \p Diags and returns nullptr. Method pairs without a
/// formula are treated as never commuting (constant false), matching
/// ObjectSpec::commute.
std::unique_ptr<TranslatedRep>
translateSpec(const ObjectSpec &Spec, DiagnosticEngine &Diags,
              TranslationOptions Options = {},
              TranslationStats *Stats = nullptr);

} // namespace crd

#endif // CRD_TRANSLATE_TRANSLATOR_H
