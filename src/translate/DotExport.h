//===- translate/DotExport.h - Graphviz export of representations -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an access point representation's conflict relation as a
/// Graphviz graph (classes as nodes, Co as edges), so translated
/// specifications can be inspected visually — handy when validating that a
/// hand-written spec produced the intended Fig 7-style structure.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TRANSLATE_DOTEXPORT_H
#define CRD_TRANSLATE_DOTEXPORT_H

#include "access/Provider.h"

#include <iosfwd>
#include <string>

namespace crd {

/// Writes `graph "<Name>" { ... }` with one node per access point class
/// (value-carrying classes drawn as boxes, plain ones as ellipses) and one
/// undirected edge per conflicting class pair; self-conflicts become
/// self-loops.
void exportConflictGraph(std::ostream &OS, const AccessPointProvider &Provider,
                         const std::string &Name);

/// Convenience: renders to a string.
std::string conflictGraphToDot(const AccessPointProvider &Provider,
                               const std::string &Name);

} // namespace crd

#endif // CRD_TRANSLATE_DOTEXPORT_H
