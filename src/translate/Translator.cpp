//===- translate/Translator.cpp - ECL → access points (§6.2) ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "translate/Translator.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace crd;

/// Each method may contribute at most this many normalized LB atoms; the
/// (β1, β2) enumeration is quadratic in 2^atoms. Real specifications use a
/// handful (the dictionary needs 3 for put).
static constexpr uint32_t MaxAtomsPerMethod = 10;

bool TranslatedRep::classCarriesValue(uint32_t ClassId) const {
  assert(ClassId < Classes.size() && "class id out of range");
  return Classes[ClassId].CarriesValue;
}

const std::vector<uint32_t> &TranslatedRep::conflictsOf(uint32_t ClassId) const {
  assert(ClassId < Conflicts.size() && "class id out of range");
  return Conflicts[ClassId];
}

std::string_view TranslatedRep::className(uint32_t ClassId) const {
  assert(ClassId < Classes.size() && "class id out of range");
  return Classes[ClassId].Name;
}

const std::vector<CanonAtom> &
TranslatedRep::methodAtoms(uint32_t MethodIdx) const {
  assert(MethodIdx < Methods.size() && "method index out of range");
  return Methods[MethodIdx].Atoms;
}

/// Evaluates a normalized (single-side) atom on one action's values.
static bool evalNormalizedAtom(const CanonAtom &Atom,
                               std::span<const Value> Values) {
  auto TermValue = [&](const Term &T) -> const Value & {
    if (!T.isVar())
      return T.constant();
    assert(T.side() == Side::First && "normalized atom mentions Second side");
    assert(T.position() < Values.size() && "position out of range");
    return Values[T.position()];
  };
  return evalPred(Atom.Base, TermValue(Atom.Lhs), TermValue(Atom.Rhs));
}

uint32_t TranslatedRep::betaMask(uint32_t MethodIdx,
                                 std::span<const Value> Values) const {
  assert(MethodIdx < Methods.size() && "method index out of range");
  const MethodInfo &M = Methods[MethodIdx];
  uint32_t Mask = 0;
  for (uint32_t T = 0, E = static_cast<uint32_t>(M.Atoms.size()); T != E; ++T)
    if (evalNormalizedAtom(M.Atoms[T], Values))
      Mask |= uint32_t(1) << T;
  return Mask;
}

void TranslatedRep::touches(const Action &A,
                            std::vector<AccessPoint> &Out) const {
  auto It = MethodIndexByName.find(A.method());
  assert(It != MethodIndexByName.end() &&
         "action method not declared in the translated specification");
  uint32_t MethodIdx = It->second;
  const MethodInfo &M = Methods[MethodIdx];
  assert(A.numValues() == M.NumValues && "action arity mismatch");

  std::span<const Value> Values = A.flatValues();
  uint32_t Mask = betaMask(MethodIdx, Values);

  size_t FirstNew = Out.size();
  auto emitUnique = [&](AccessPoint Pt) {
    for (size_t I = FirstNew, E = Out.size(); I != E; ++I)
      if (Out[I] == Pt)
        return;
    Out.push_back(std::move(Pt));
  };

  uint32_t DsClass = SlotToClass[slotIndex(MethodIdx, Mask, -1)];
  if (DsClass != NoClass)
    emitUnique(AccessPoint::plain(DsClass));
  for (uint32_t Pos = 0; Pos != M.NumValues; ++Pos) {
    uint32_t Class = SlotToClass[slotIndex(MethodIdx, Mask, Pos)];
    if (Class != NoClass)
      emitUnique(AccessPoint::withValue(Class, Values[Pos]));
  }
}

namespace crd {

/// Builds a TranslatedRep from an ObjectSpec. Friend of TranslatedRep.
class TranslatorImpl {
public:
  TranslatorImpl(const ObjectSpec &Spec, DiagnosticEngine &Diags,
                 TranslationOptions Options, TranslationStats *Stats)
      : Spec(Spec), Diags(Diags), Options(Options), Stats(Stats),
        Rep(new TranslatedRep()) {}

  std::unique_ptr<TranslatedRep> run() {
    if (!collectAtoms())
      return nullptr;
    layoutSlots();
    if (!buildConflictRows())
      return nullptr;
    optimizeAndFinalize();
    return std::move(Rep);
  }

private:
  using MethodInfo = TranslatedRep::MethodInfo;
  static constexpr uint32_t NoClass = TranslatedRep::NoClass;

  //===------------------------------------------------------------------===//
  // Step 1: determine B(Φ, m) for every method.
  //===------------------------------------------------------------------===//

  /// Rebuilds an LB atom with all its variables moved to the First side
  /// (the paper's normalization that "drops the distinction between V1 and
  /// V2"), then canonicalizes it.
  static CanonAtom normalizeAtom(const Formula &Atom) {
    auto Normalize = [](const Term &T) {
      return T.isVar() ? Term::var(Side::First, T.position()) : T;
    };
    FormulaPtr Rebuilt =
        Formula::atom(Atom.pred(), Normalize(Atom.lhs()), Normalize(Atom.rhs()));
    assert(Rebuilt->kind() == Formula::Kind::Atom &&
           "LB atom folded to a constant");
    return canonicalizeAtom(*Rebuilt);
  }

  /// Index of \p Base within method \p MethodIdx's atom list, adding it on
  /// first sight. Returns false when the per-method cap is exceeded.
  bool addMethodAtom(uint32_t MethodIdx, const CanonAtom &Base) {
    std::vector<CanonAtom> &Atoms = Rep->Methods[MethodIdx].Atoms;
    if (std::find(Atoms.begin(), Atoms.end(), Base) != Atoms.end())
      return true;
    if (Atoms.size() >= MaxAtomsPerMethod) {
      Diags.error({}, "method '" +
                          std::string(Rep->Methods[MethodIdx].Name.str()) +
                          "' uses more than " +
                          std::to_string(MaxAtomsPerMethod) +
                          " distinct single-invocation atoms; the "
                          "translation would be too large");
      return false;
    }
    Atoms.push_back(Base);
    return true;
  }

  std::optional<uint32_t> atomIndex(uint32_t MethodIdx,
                                    const CanonAtom &Base) const {
    const std::vector<CanonAtom> &Atoms = Rep->Methods[MethodIdx].Atoms;
    auto It = std::find(Atoms.begin(), Atoms.end(), Base);
    if (It == Atoms.end())
      return std::nullopt;
    return static_cast<uint32_t>(It - Atoms.begin());
  }

  bool collectAtoms() {
    uint32_t NumMethods = static_cast<uint32_t>(Spec.numMethods());
    for (uint32_t I = 0; I != NumMethods; ++I) {
      const MethodSig &Sig = Spec.method(I);
      MethodInfo Info;
      Info.Name = Sig.Name;
      Info.NumValues = Sig.numValues();
      Rep->Methods.push_back(std::move(Info));
      Rep->MethodIndexByName.emplace(Sig.Name, I);
    }

    for (uint32_t I = 0; I != NumMethods; ++I) {
      for (uint32_t J = I; J != NumMethods; ++J) {
        FormulaPtr F = Spec.commutesFormula(I, J);
        if (!F)
          continue; // Treated as constant false; contributes no atoms.
        std::string PairName =
            "phi[" + std::string(Spec.method(I).Name.str()) + ", " +
            std::string(Spec.method(J).Name.str()) + "]";
        if (!isECL(*F)) {
          Diags.error({}, PairName + " is not in ECL: " + *explainNotECL(F));
          return false;
        }
        std::vector<FormulaPtr> Atoms;
        F->collectAtoms(Atoms);
        for (const FormulaPtr &A : Atoms) {
          if (classifyAtom(*A) != AtomClass::LB)
            continue; // LS atoms are handled by the residual, not by β.
          // An LB atom belongs to the side whose variables it mentions.
          bool OnFirst = A->atomMentionsSide(Side::First);
          uint32_t Method = OnFirst ? I : J;
          if (!addMethodAtom(Method, normalizeAtom(*A)))
            return false;
        }
      }
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Step 2: dense slot layout per (method, β mask, ds/position).
  //===------------------------------------------------------------------===//

  void layoutSlots() {
    uint32_t Next = 0;
    for (MethodInfo &M : Rep->Methods) {
      M.SlotBase = Next;
      Next += (uint32_t(1) << M.Atoms.size()) * (M.NumValues + 1);
    }
    TotalSlots = Next;
    Rows.assign(TotalSlots, {});
    if (Stats)
      Stats->RawSlots = TotalSlots;
  }

  uint32_t slot(uint32_t MethodIdx, uint32_t Mask, int32_t Pos) const {
    return Rep->slotIndex(MethodIdx, Mask, Pos);
  }

  /// Whether a slot identifies a value access point (position) rather than
  /// a ds point.
  bool slotCarriesValue(uint32_t SlotId) const {
    return slotPos(SlotId) >= 0;
  }

  uint32_t slotMethod(uint32_t SlotId) const {
    uint32_t M = 0;
    while (M + 1 < Rep->Methods.size() &&
           Rep->Methods[M + 1].SlotBase <= SlotId)
      ++M;
    return M;
  }

  uint32_t slotMask(uint32_t SlotId) const {
    uint32_t M = slotMethod(SlotId);
    return (SlotId - Rep->Methods[M].SlotBase) /
           (Rep->Methods[M].NumValues + 1);
  }

  int32_t slotPos(uint32_t SlotId) const {
    uint32_t M = slotMethod(SlotId);
    return static_cast<int32_t>((SlotId - Rep->Methods[M].SlotBase) %
                                (Rep->Methods[M].NumValues + 1)) -
           1;
  }

  //===------------------------------------------------------------------===//
  // Step 3: conflict relation via residuals ϕ[β1; β2].
  //===------------------------------------------------------------------===//

  /// Substitutes β values for the LB atoms of \p F and constant-folds.
  /// By Lemma 6.4 the result is an LS formula.
  FormulaPtr residual(const Formula &F, uint32_t MethodI, uint32_t Mask1,
                      uint32_t MethodJ, uint32_t Mask2) const {
    switch (F.kind()) {
    case Formula::Kind::True:
    case Formula::Kind::False:
      return Formula::truth(F.isTrue());
    case Formula::Kind::Atom: {
      if (classifyAtom(F) == AtomClass::LS)
        return Formula::atom(F.pred(), F.lhs(), F.rhs());
      bool OnFirst = F.atomMentionsSide(Side::First);
      CanonAtom Canon = normalizeAtom(F);
      uint32_t Method = OnFirst ? MethodI : MethodJ;
      uint32_t Mask = OnFirst ? Mask1 : Mask2;
      auto Index = atomIndex(Method, Canon);
      assert(Index && "LB atom missing from B(Phi, m)");
      bool BaseValue = (Mask >> *Index) & 1;
      return Formula::truth(BaseValue != Canon.Negated);
    }
    case Formula::Kind::Not: {
      FormulaPtr Inner =
          residual(*F.operand(), MethodI, Mask1, MethodJ, Mask2);
      return Formula::notOf(std::move(Inner));
    }
    case Formula::Kind::And:
      return Formula::andOf(residual(*F.left(), MethodI, Mask1, MethodJ, Mask2),
                            residual(*F.right(), MethodI, Mask1, MethodJ, Mask2));
    case Formula::Kind::Or:
      return Formula::orOf(residual(*F.left(), MethodI, Mask1, MethodJ, Mask2),
                           residual(*F.right(), MethodI, Mask1, MethodJ, Mask2));
    }
    return Formula::truth(false);
  }

  /// LS normal form of a residual: false, or a list of (i, j) disequality
  /// conjuncts (empty = true). Returns false on malformed input.
  bool normalForm(const FormulaPtr &F, bool &IsFalse,
                  std::vector<std::pair<uint32_t, uint32_t>> &Conjuncts) const {
    IsFalse = false;
    Conjuncts.clear();
    if (F->isFalse()) {
      IsFalse = true;
      return true;
    }
    return collectConjuncts(*F, Conjuncts);
  }

  bool collectConjuncts(
      const Formula &F,
      std::vector<std::pair<uint32_t, uint32_t>> &Conjuncts) const {
    switch (F.kind()) {
    case Formula::Kind::True:
      return true;
    case Formula::Kind::And:
      return collectConjuncts(*F.left(), Conjuncts) &&
             collectConjuncts(*F.right(), Conjuncts);
    case Formula::Kind::Atom: {
      if (classifyAtom(F) != AtomClass::LS)
        return false;
      const Term &L = F.lhs(), &R = F.rhs();
      uint32_t I = L.side() == Side::First ? L.position() : R.position();
      uint32_t J = L.side() == Side::First ? R.position() : L.position();
      Conjuncts.emplace_back(I, J);
      return true;
    }
    default:
      return false; // Or/Not must not survive substitution in ECL.
    }
  }

  void addConflict(uint32_t A, uint32_t B) {
    Rows[A].push_back(B);
    if (A != B)
      Rows[B].push_back(A);
  }

  bool buildConflictRows() {
    uint32_t NumMethods = static_cast<uint32_t>(Rep->Methods.size());
    std::vector<std::pair<uint32_t, uint32_t>> Conjuncts;

    for (uint32_t I = 0; I != NumMethods; ++I) {
      for (uint32_t J = I; J != NumMethods; ++J) {
        FormulaPtr F = Spec.commutesFormula(I, J);
        if (!F)
          F = Formula::truth(Spec.defaultCommutes().value_or(false));
        if (F->isTrue())
          continue; // Always commutes: no conflicts at all.

        uint32_t Masks1 = uint32_t(1) << Rep->Methods[I].Atoms.size();
        uint32_t Masks2 = uint32_t(1) << Rep->Methods[J].Atoms.size();
        for (uint32_t B1 = 0; B1 != Masks1; ++B1) {
          // For I == J the relation is symmetrized by addConflict, so the
          // (B2, B1) enumeration would duplicate (B1, B2).
          uint32_t B2Begin = I == J ? B1 : 0;
          for (uint32_t B2 = B2Begin; B2 != Masks2; ++B2) {
            FormulaPtr Res = residual(*F, I, B1, J, B2);
            bool IsFalse = false;
            if (!normalForm(Res, IsFalse, Conjuncts)) {
              Diags.error({}, "internal: residual of phi[" +
                                  std::string(Rep->Methods[I].Name.str()) +
                                  ", " +
                                  std::string(Rep->Methods[J].Name.str()) +
                                  "] is not in LS normal form: " +
                                  Res->toString());
              return false;
            }
            if (IsFalse) {
              addConflict(slot(I, B1, -1), slot(J, B2, -1));
              continue;
            }
            for (auto [Pi, Pj] : Conjuncts)
              addConflict(slot(I, B1, static_cast<int32_t>(Pi)),
                          slot(J, B2, static_cast<int32_t>(Pj)));
          }
        }
      }
    }

    for (std::vector<uint32_t> &Row : Rows) {
      std::sort(Row.begin(), Row.end());
      Row.erase(std::unique(Row.begin(), Row.end()), Row.end());
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Step 4: appendix A.3 simplification passes.
  //===------------------------------------------------------------------===//

  /// Dropping: per slot family (method, ds/position), keep only the β atoms
  /// whose value influences the family's conflict rows; slots whose masks
  /// agree on the relevant atoms are identified.
  void computeDropping(std::vector<uint32_t> &Canon) const {
    for (uint32_t M = 0, E = static_cast<uint32_t>(Rep->Methods.size());
         M != E; ++M) {
      const MethodInfo &Info = Rep->Methods[M];
      uint32_t NumAtoms = static_cast<uint32_t>(Info.Atoms.size());
      uint32_t NumMasks = uint32_t(1) << NumAtoms;
      for (int32_t Pos = -1; Pos < static_cast<int32_t>(Info.NumValues);
           ++Pos) {
        uint32_t Relevant = 0;
        for (uint32_t T = 0; T != NumAtoms; ++T) {
          uint32_t Bit = uint32_t(1) << T;
          for (uint32_t Mask = 0; Mask != NumMasks; ++Mask) {
            if (Mask & Bit)
              continue;
            if (Rows[slot(M, Mask, Pos)] != Rows[slot(M, Mask | Bit, Pos)]) {
              Relevant |= Bit;
              break;
            }
          }
        }
        for (uint32_t Mask = 0; Mask != NumMasks; ++Mask)
          Canon[slot(M, Mask, Pos)] = slot(M, Mask & Relevant, Pos);
      }
    }
  }

  void optimizeAndFinalize() {
    // Canonical slot per slot; starts as identity.
    std::vector<uint32_t> Canon(TotalSlots);
    for (uint32_t S = 0; S != TotalSlots; ++S)
      Canon[S] = S;
    if (Options.DropIrrelevantAtoms)
      computeDropping(Canon);

    size_t NumReps = 0;
    for (uint32_t S = 0; S != TotalSlots; ++S)
      if (Canon[S] == S)
        ++NumReps;
    if (Stats)
      Stats->SlotsAfterDropping = NumReps;

    // Row of a representative, expressed over canonical slot ids.
    auto canonicalRow = [&](uint32_t S) {
      std::vector<uint32_t> Row;
      Row.reserve(Rows[S].size());
      for (uint32_t T : Rows[S])
        Row.push_back(Canon[T]);
      std::sort(Row.begin(), Row.end());
      Row.erase(std::unique(Row.begin(), Row.end()), Row.end());
      return Row;
    };

    // Replacement: merge congruent representatives (same kind, same row).
    // With the pass disabled, every representative is its own class.
    std::vector<uint32_t> ClassOf(TotalSlots, NoClass);
    std::vector<uint32_t> ClassRep;
    std::map<std::pair<bool, std::vector<uint32_t>>, uint32_t> Groups;
    for (uint32_t S = 0; S != TotalSlots; ++S) {
      if (Canon[S] != S)
        continue;
      if (Options.MergeCongruentSlots) {
        auto Key = std::make_pair(slotCarriesValue(S), canonicalRow(S));
        auto [It, Inserted] =
            Groups.emplace(std::move(Key),
                           static_cast<uint32_t>(ClassRep.size()));
        if (Inserted)
          ClassRep.push_back(S);
        ClassOf[S] = It->second;
      } else {
        ClassOf[S] = static_cast<uint32_t>(ClassRep.size());
        ClassRep.push_back(S);
      }
    }
    if (Stats)
      Stats->ClassesAfterMerging = ClassRep.size();

    // Conflict rows per class.
    std::vector<std::vector<uint32_t>> ClassRows(ClassRep.size());
    for (uint32_t C = 0, E = static_cast<uint32_t>(ClassRep.size()); C != E;
         ++C) {
      for (uint32_t T : canonicalRow(ClassRep[C]))
        ClassRows[C].push_back(ClassOf[T]);
      std::sort(ClassRows[C].begin(), ClassRows[C].end());
      ClassRows[C].erase(
          std::unique(ClassRows[C].begin(), ClassRows[C].end()),
          ClassRows[C].end());
    }

    // Cleanup: deactivate conflict-free classes and compact ids.
    std::vector<uint32_t> Remap(ClassRep.size(), NoClass);
    uint32_t Next = 0;
    for (uint32_t C = 0, E = static_cast<uint32_t>(ClassRep.size()); C != E;
         ++C) {
      if (Options.RemoveConflictFree && ClassRows[C].empty())
        continue;
      Remap[C] = Next++;
    }

    Rep->Classes.resize(Next);
    Rep->Conflicts.resize(Next);
    for (uint32_t C = 0, E = static_cast<uint32_t>(ClassRep.size()); C != E;
         ++C) {
      if (Remap[C] == NoClass)
        continue;
      TranslatedRep::ClassInfo &Info = Rep->Classes[Remap[C]];
      Info.CarriesValue = slotCarriesValue(ClassRep[C]);
      Info.Name = slotName(ClassRep[C]);
      std::vector<uint32_t> &Out = Rep->Conflicts[Remap[C]];
      for (uint32_t T : ClassRows[C]) {
        assert(Remap[T] != NoClass &&
               "conflict partner removed by cleanup despite nonempty row");
        Out.push_back(Remap[T]);
      }
    }

    Rep->SlotToClass.assign(TotalSlots, NoClass);
    for (uint32_t S = 0; S != TotalSlots; ++S) {
      uint32_t C = ClassOf[Canon[S]];
      Rep->SlotToClass[S] = C == NoClass ? NoClass : Remap[C];
    }

    if (Stats) {
      Stats->FinalActiveClasses = Next;
      for (const std::vector<uint32_t> &Row : Rep->Conflicts)
        Stats->MaxConflictsPerClass =
            std::max(Stats->MaxConflictsPerClass, Row.size());
    }
  }

  /// Debug name for a slot, e.g. "put{x2 == x3}:1" or "size{}:ds".
  std::string slotName(uint32_t SlotId) const {
    uint32_t M = slotMethod(SlotId);
    uint32_t Mask = slotMask(SlotId);
    int32_t Pos = slotPos(SlotId);
    const MethodInfo &Info = Rep->Methods[M];
    std::ostringstream OS;
    OS << Info.Name.str() << '{';
    for (uint32_t T = 0, E = static_cast<uint32_t>(Info.Atoms.size()); T != E;
         ++T) {
      if (T)
        OS << ',';
      const CanonAtom &A = Info.Atoms[T];
      bool Holds = (Mask >> T) & 1;
      OS << (Holds ? "" : "!") << '('
         << Formula::atom(A.Base, A.Lhs, A.Rhs)->toString() << ')';
    }
    OS << '}';
    if (Pos < 0)
      OS << ":ds";
    else
      OS << ':' << (Pos + 1);
    return OS.str();
  }

  const ObjectSpec &Spec;
  DiagnosticEngine &Diags;
  TranslationOptions Options;
  TranslationStats *Stats;
  std::unique_ptr<TranslatedRep> Rep;
  uint32_t TotalSlots = 0;
  std::vector<std::vector<uint32_t>> Rows;
};

} // namespace crd

std::unique_ptr<TranslatedRep>
crd::translateSpec(const ObjectSpec &Spec, DiagnosticEngine &Diags,
                   TranslationOptions Options, TranslationStats *Stats) {
  TranslatorImpl Impl(Spec, Diags, Options, Stats);
  return Impl.run();
}
