#!/usr/bin/env bash
# Reduced-rep live-ingestion stress smoke for CI (the `ingest-stress`
# ctest, RUN_SERIAL).
#
# Drives `crd record --stress` — real producer threads through SPSC rings
# into live sequential detection — and checks the invariants that must
# hold on ANY host:
#
#   * Block backpressure is lossless ("lost 0", "dropped 0");
#   * the recorded wire stream replays to bit-identical races
#     ("replay identical: yes" — the ingestion determinism contract).
#
# The throughput acceptance bar (>= 8 producers sustaining >= 10M
# aggregate events/s into live detection) only means something when the
# producers, the collector, and the detector can actually run in
# parallel; like the parallel-scaling gate in bench_compare.py it is
# enforced only on hosts with >= 8 CPUs. On a single-CPU host the whole
# test is a skip (exit 77, the ctest SKIP_RETURN_CODE convention): every
# thread timeshares one core and the numbers measure scheduling overhead.
#
# Usage: ingest_smoke.sh <build-dir>
set -u

BUILD_DIR="${1:?usage: ingest_smoke.sh <build-dir>}"
CRD="$BUILD_DIR/tools/crd/crd"

CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$CPUS" -lt 2 ]; then
  echo "ingest_smoke: single-CPU host ($CPUS); producers cannot overlap the collector — skipping" >&2
  exit 77
fi

# Scale the stress to the host class: enough producers to exercise the
# merge, small enough per-producer volume to stay a smoke test.
PRODUCERS=8
EVENTS=100000

OUT="$("$CRD" record --stress --producers=$PRODUCERS --events=$EVENTS \
    --ring=4096 --policy=block --detector=seq --verify-replay 2>&1)"
status=$?
echo "$OUT"
if [ "$status" -ne 0 ]; then
  echo "ingest_smoke: crd record --stress failed (exit $status)" >&2
  exit 1
fi
case "$OUT" in
  *"lost 0"*) ;;
  *) echo "ingest_smoke: Block policy lost events" >&2; exit 1 ;;
esac
case "$OUT" in
  *"dropped 0"*) ;;
  *) echo "ingest_smoke: Block policy reported drops" >&2; exit 1 ;;
esac
case "$OUT" in
  *"replay identical: yes"*) ;;
  *) echo "ingest_smoke: live races diverge from wire replay" >&2; exit 1 ;;
esac

if [ "$CPUS" -lt 8 ]; then
  echo "ingest_smoke: $CPUS CPUs < 8; correctness checks passed, throughput bar skipped (needs >= 8 CPUs)"
  exit 0
fi

# >= 10M aggregate events/s into live detection, parsed from the summary
# line ("... (12.34M events/s aggregate)").
RATE_M="$(printf '%s\n' "$OUT" | sed -n 's/.*(\([0-9.]*\)M events\/s aggregate).*/\1/p')"
if [ -z "$RATE_M" ]; then
  echo "ingest_smoke: below 1M events/s — throughput bar (10M) missed" >&2
  exit 1
fi
if ! awk -v r="$RATE_M" 'BEGIN { exit !(r >= 10.0) }'; then
  echo "ingest_smoke: ${RATE_M}M events/s < 10M events/s throughput bar" >&2
  exit 1
fi
echo "ingest_smoke: ${RATE_M}M events/s aggregate — throughput bar met"
exit 0
