#!/usr/bin/env python3
"""Diff two BENCH_*.json trajectory artifacts and fail on regressions.

Compares the events_per_sec of every benchmark present in both files
(matched by name) and exits 1 when any configuration regressed by more
than the threshold (default 15%), or when a configuration disappeared,
or when the race counts (the correctness anchor) diverge. Intended for
CI and for PR authors:

    scripts/bench_compare.py old/BENCH_detector.json BENCH_detector.json

Benchmarks only present in the new file are reported as additions and
never fail the comparison.

Artifacts record provenance (host_cpus, git_rev — bench/report.h). When
both files carry host_cpus and the values differ, the comparison is
refused with exit code 77 (the ctest SKIP convention): throughput ratios
across host classes are noise, not signal. Pass --allow-host-mismatch to
compare anyway (e.g. for manual inspection).

On hosts with >= 4 CPUs the new artifact must additionally clear the
scaling bar: parallel/shards=4 at >= 1.3x seq/epoch. The bar is skipped
on smaller hosts, where shard workers timeshare with the pre-pass and no
overlap is observable.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    marks = doc.get("benchmarks")
    if not isinstance(marks, list):
        sys.exit(f"error: {path}: no 'benchmarks' array")
    out = {}
    for b in marks:
        name = b.get("name")
        if not name:
            sys.exit(f"error: {path}: benchmark entry without a name")
        out[name] = b
    return doc, out


def main():
    ap = argparse.ArgumentParser(
        description="Fail when the new bench artifact regresses vs the old one."
    )
    ap.add_argument("old", help="baseline BENCH_*.json")
    ap.add_argument("new", help="candidate BENCH_*.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed fractional throughput drop per config (default 0.15)",
    )
    ap.add_argument(
        "--alloc-slack",
        type=float,
        default=0.01,
        help="allowed absolute allocs_per_event growth when both artifacts "
        "carry the allocation counter (default 0.01; the whole hot path "
        "sits at ~0.05-0.10, so 0.01 already flags one new allocation per "
        "ten races)",
    )
    ap.add_argument(
        "--alloc-ceiling",
        type=float,
        default=0.15,
        help="absolute allocs_per_event any configuration may reach "
        "(default 0.15 — the detectors run span/SSO-based reporting and "
        "epoch escalation only, so every config sits well below this; "
        "crossing it means per-event heap traffic came back)",
    )
    ap.add_argument(
        "--allow-host-mismatch",
        action="store_true",
        help="compare artifacts from different host classes anyway "
        "(the diff is noise; default is to refuse with exit 77)",
    )
    args = ap.parse_args()

    old_doc, old = load(args.old)
    new_doc, new = load(args.new)
    if old_doc.get("tool") != new_doc.get("tool"):
        print(
            f"warning: comparing different tools "
            f"({old_doc.get('tool')} vs {new_doc.get('tool')})",
            file=sys.stderr,
        )

    # Host-class gate: a 1-CPU run and a 16-CPU run of the same benchmark
    # are different experiments, and diffing them reports phantom
    # regressions (or hides real ones). Refuse unless explicitly overridden.
    old_cpus = old_doc.get("host_cpus")
    new_cpus = new_doc.get("host_cpus")
    if old_cpus is not None and new_cpus is not None and old_cpus != new_cpus:
        msg = (
            f"host class mismatch: {args.old} recorded host_cpus={old_cpus}, "
            f"{args.new} recorded host_cpus={new_cpus}"
        )
        if not args.allow_host_mismatch:
            print(f"refusing to compare: {msg}", file=sys.stderr)
            print("(pass --allow-host-mismatch to compare anyway)", file=sys.stderr)
            return 77
        print(f"warning: {msg}; comparing anyway", file=sys.stderr)

    failures = []
    width = max((len(n) for n in old), default=10)
    for name, ob in sorted(old.items()):
        nb = new.get(name)
        if nb is None:
            failures.append(f"{name}: missing from {args.new}")
            continue
        old_eps = float(ob.get("events_per_sec", 0))
        new_eps = float(nb.get("events_per_sec", 0))
        ratio = new_eps / old_eps if old_eps > 0 else float("inf")
        line = f"{name:<{width}}  {old_eps:>12,.0f} -> {new_eps:>12,.0f}  {ratio:6.2f}x"
        if "races" in ob and "races" in nb and ob["races"] != nb["races"]:
            failures.append(
                f"{name}: race count changed {ob['races']} -> {nb['races']}"
            )
            line += "  RACE COUNT MISMATCH"
        elif old_eps > 0 and ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: throughput regressed {1.0 - ratio:.1%} "
                f"(> {args.threshold:.0%} allowed)"
            )
            line += "  REGRESSED"
        # The allocation counter is optional (bench-only define); compare it
        # when both sides carry it so new per-event heap traffic in the hot
        # path fails the diff even if throughput noise hides it.
        if "allocs_per_event" in ob and "allocs_per_event" in nb:
            old_alloc = float(ob["allocs_per_event"])
            new_alloc = float(nb["allocs_per_event"])
            if new_alloc > old_alloc + args.alloc_slack:
                failures.append(
                    f"{name}: allocs_per_event grew "
                    f"{old_alloc:.4f} -> {new_alloc:.4f} "
                    f"(> {args.alloc_slack} slack)"
                )
                line += "  ALLOC GROWTH"
            elif old_alloc <= args.alloc_ceiling < new_alloc:
                # Ceiling only polices configurations that lived below it:
                # text parsing legitimately allocates per line and is
                # covered by the growth check alone.
                failures.append(
                    f"{name}: allocs_per_event {new_alloc:.4f} exceeds "
                    f"the absolute ceiling {args.alloc_ceiling}"
                )
                line += "  ALLOC CEILING"
        print(line)

    for name in sorted(set(new) - set(old)):
        print(f"{name:<{width}}  (new configuration)")

    # Absolute scaling bar, judged on the new artifact alone: with >= 4
    # CPUs available the 4-shard pipeline must beat the sequential epoch
    # detector by 1.3x. Gated on the recorded host_cpus, not the current
    # machine — the artifact says what host produced the numbers.
    seq = new.get("seq/epoch")
    par4 = new.get("parallel/shards=4")
    if isinstance(new_cpus, int) and new_cpus >= 4 and seq and par4:
        seq_eps = float(seq.get("events_per_sec", 0))
        par_eps = float(par4.get("events_per_sec", 0))
        speedup = par_eps / seq_eps if seq_eps > 0 else float("inf")
        print(f"\nscaling bar (host_cpus={new_cpus}): "
              f"parallel/shards=4 at {speedup:.2f}x seq/epoch (need >= 1.30x)")
        if speedup < 1.3:
            failures.append(
                f"parallel/shards=4: only {speedup:.2f}x seq/epoch on a "
                f"{new_cpus}-cpu host (>= 1.3x required)"
            )

    # Memo-mode anchor, judged on the new artifact alone: chunk
    # memoization is an optimization, never an approximation, so every
    # analyze/memo=* configuration in BENCH_memo.json must report the
    # exact same races.
    memo_races = {
        name: b.get("races")
        for name, b in new.items()
        if name.startswith("analyze/memo=") and "races" in b
    }
    if len(set(memo_races.values())) > 1:
        failures.append(
            "races diverge across memo modes: "
            + ", ".join(f"{n}={r}" for n, r in sorted(memo_races.items()))
        )

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
