#!/usr/bin/env python3
"""Diff two BENCH_*.json trajectory artifacts and fail on regressions.

Compares the events_per_sec of every benchmark present in both files
(matched by name) and exits 1 when any configuration regressed by more
than the threshold (default 15%), or when a configuration disappeared,
or when the race counts (the correctness anchor) diverge. Intended for
CI and for PR authors:

    scripts/bench_compare.py old/BENCH_detector.json BENCH_detector.json

Benchmarks only present in the new file are reported as additions and
never fail the comparison.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    marks = doc.get("benchmarks")
    if not isinstance(marks, list):
        sys.exit(f"error: {path}: no 'benchmarks' array")
    out = {}
    for b in marks:
        name = b.get("name")
        if not name:
            sys.exit(f"error: {path}: benchmark entry without a name")
        out[name] = b
    return doc, out


def main():
    ap = argparse.ArgumentParser(
        description="Fail when the new bench artifact regresses vs the old one."
    )
    ap.add_argument("old", help="baseline BENCH_*.json")
    ap.add_argument("new", help="candidate BENCH_*.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed fractional throughput drop per config (default 0.15)",
    )
    ap.add_argument(
        "--alloc-slack",
        type=float,
        default=0.05,
        help="allowed absolute allocs_per_event growth when both artifacts "
        "carry the allocation counter (default 0.05)",
    )
    args = ap.parse_args()

    old_doc, old = load(args.old)
    new_doc, new = load(args.new)
    if old_doc.get("tool") != new_doc.get("tool"):
        print(
            f"warning: comparing different tools "
            f"({old_doc.get('tool')} vs {new_doc.get('tool')})",
            file=sys.stderr,
        )

    failures = []
    width = max((len(n) for n in old), default=10)
    for name, ob in sorted(old.items()):
        nb = new.get(name)
        if nb is None:
            failures.append(f"{name}: missing from {args.new}")
            continue
        old_eps = float(ob.get("events_per_sec", 0))
        new_eps = float(nb.get("events_per_sec", 0))
        ratio = new_eps / old_eps if old_eps > 0 else float("inf")
        line = f"{name:<{width}}  {old_eps:>12,.0f} -> {new_eps:>12,.0f}  {ratio:6.2f}x"
        if "races" in ob and "races" in nb and ob["races"] != nb["races"]:
            failures.append(
                f"{name}: race count changed {ob['races']} -> {nb['races']}"
            )
            line += "  RACE COUNT MISMATCH"
        elif old_eps > 0 and ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: throughput regressed {1.0 - ratio:.1%} "
                f"(> {args.threshold:.0%} allowed)"
            )
            line += "  REGRESSED"
        # The allocation counter is optional (bench-only define); compare it
        # when both sides carry it so new per-event heap traffic in the hot
        # path fails the diff even if throughput noise hides it.
        if "allocs_per_event" in ob and "allocs_per_event" in nb:
            old_alloc = float(ob["allocs_per_event"])
            new_alloc = float(nb["allocs_per_event"])
            if new_alloc > old_alloc + args.alloc_slack:
                failures.append(
                    f"{name}: allocs_per_event grew "
                    f"{old_alloc:.4f} -> {new_alloc:.4f} "
                    f"(> {args.alloc_slack} slack)"
                )
                line += "  ALLOC GROWTH"
        print(line)

    for name in sorted(set(new) - set(old)):
        print(f"{name:<{width}}  (new configuration)")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
