#!/usr/bin/env python3
"""Documentation consistency checker (the `docs` ctest label).

Three classes of rot this catches:

1. Dead relative links: every `[text](path)` markdown link in the checked
   pages whose target is a repo file (not http(s)/mailto/#anchor) must
   resolve relative to the page that contains it.

2. Stale CLI documentation: every `crd <verb>` invocation shown in a code
   span or fenced code block must name a verb that `crd --help` lists, and
   every `--flag` on such an invocation line must appear in that verb's
   `crd <verb> --help` text. Docs promising options the tool dropped (or
   never had) fail the build instead of misleading readers.

3. Undocumented metrics: every JSON field name the observability snapshot
   emits (the `W.field("...")` / `W.key("...")` calls in
   src/wire/StreamPipeline.cpp) must be mentioned in
   docs/observability.md, so `crd profile` output never grows fields the
   reference page does not explain.

Usage: check_docs.py <repo-root> <crd-binary>

Exit codes: 0 = consistent, 1 = findings (each printed to stderr),
2 = bad invocation / cannot run the crd binary.
"""

import re
import subprocess
import sys
from pathlib import Path

# Pages checked for links and CLI references. docs/*.md is globbed on top.
TOP_LEVEL_PAGES = [
    "README.md",
    "DESIGN.md",
    "ROADMAP.md",
    "EXPERIMENTS.md",
    "CHANGES.md",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# A metrics field emission in the snapshot writer: W.field("name", ...),
# W.fieldArray("name", ...) or W.key("name").
METRIC_FIELD_RE = re.compile(r'W\.(?:field|fieldArray|key)\("([a-z0-9_]+)"')
INLINE_CODE_RE = re.compile(r"`([^`]+)`")
CRD_INVOCATION_RE = re.compile(r"\bcrd\s+([a-z][a-z0-9-]*)")
FLAG_RE = re.compile(r"(--[a-zA-Z][\w-]*)")
ALWAYS_OK_FLAGS = {"--help", "-h"}


def run_help(crd, *args):
    """Returns combined stdout+stderr of `crd *args` (help text)."""
    proc = subprocess.run(
        [crd, *args], capture_output=True, text=True, timeout=60
    )
    return proc.stdout + proc.stderr


def documented_verbs(crd):
    """Verbs `crd --help` lists (two-space-indented 'verb  description')."""
    verbs = set()
    for line in run_help(crd, "--help").splitlines():
        m = re.match(r"^  ([a-z][a-z0-9-]*)\s{2,}\S", line)
        if m:
            verbs.add(m.group(1))
    return verbs


def check_links(page, text, repo_root, problems):
    for lineno, line in enumerate(text.splitlines(), 1):
        for target in LINK_RE.findall(line):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme.
                continue
            if target.startswith("#"):  # In-page anchor.
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{page.relative_to(repo_root)}:{lineno}: dead link "
                    f"'{target}' (resolves to {resolved})"
                )


def code_lines(text):
    """Yields (lineno, code) for fenced-block lines and inline code spans."""
    fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if stripped.startswith("```"):
            fence = not fence
            continue
        if fence:
            yield lineno, line
        else:
            for span in INLINE_CODE_RE.findall(line):
                yield lineno, span


def check_cli_references(page, text, repo_root, verbs, verb_help, crd,
                         problems):
    for lineno, code in code_lines(text):
        for m in CRD_INVOCATION_RE.finditer(code):
            verb = m.group(1)
            if verb == "help":
                continue
            if verb not in verbs:
                problems.append(
                    f"{page.relative_to(repo_root)}:{lineno}: documented "
                    f"verb 'crd {verb}' is not listed by 'crd --help'"
                )
                continue
            if verb not in verb_help:
                verb_help[verb] = run_help(crd, verb, "--help")
            rest = code[m.end():]
            # Stop at the next crd invocation in the same span, if any.
            nxt = CRD_INVOCATION_RE.search(rest)
            if nxt:
                rest = rest[: nxt.start()]
            for flag in FLAG_RE.findall(rest):
                if flag in ALWAYS_OK_FLAGS:
                    continue
                if flag not in verb_help[verb]:
                    problems.append(
                        f"{page.relative_to(repo_root)}:{lineno}: "
                        f"documented option '{flag}' is not in "
                        f"'crd {verb} --help'"
                    )


# Each snapshot writer and the reference page that must document every
# JSON field it emits.
METRIC_SNAPSHOT_PAIRS = [
    ("src/wire/StreamPipeline.cpp", "docs/observability.md"),
    ("src/ingest/Session.cpp", "docs/ingestion.md"),
    ("src/serve/Server.cpp", "docs/serve.md"),
]


def check_metric_fields(repo_root, problems):
    """Every field a metrics snapshot emits must be documented."""
    for src_rel, doc_rel in METRIC_SNAPSHOT_PAIRS:
        src = repo_root / Path(src_rel)
        doc = repo_root / Path(doc_rel)
        if not src.exists():
            continue
        if not doc.exists():
            problems.append(
                f"{doc_rel}: missing, but {src_rel} emits a metrics snapshot"
            )
            continue
        fields = set(METRIC_FIELD_RE.findall(src.read_text(encoding="utf-8")))
        doc_text = doc.read_text(encoding="utf-8")
        for name in sorted(fields):
            if name not in doc_text:
                problems.append(
                    f"{doc_rel}: metrics field '{name}' (emitted by "
                    f"{src_rel}) is undocumented"
                )


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    repo_root = Path(sys.argv[1]).resolve()
    crd = sys.argv[2]

    try:
        verbs = documented_verbs(crd)
    except OSError as err:
        print(f"error: cannot run '{crd}': {err}", file=sys.stderr)
        return 2
    if not verbs:
        print(f"error: 'crd --help' listed no commands", file=sys.stderr)
        return 2

    pages = [repo_root / p for p in TOP_LEVEL_PAGES]
    pages += sorted((repo_root / "docs").glob("*.md"))
    pages = [p for p in pages if p.exists()]

    problems = []
    verb_help = {}
    for page in pages:
        text = page.read_text(encoding="utf-8")
        check_links(page, text, repo_root, problems)
        check_cli_references(page, text, repo_root, verbs, verb_help, crd,
                             problems)
    check_metric_fields(repo_root, problems)

    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"check_docs: {len(pages)} pages, {len(verbs)} crd verbs, "
        f"{len(problems)} problems"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
