#!/usr/bin/env bash
# Detection-daemon soak smoke for CI (the `serve-stress` ctest,
# RUN_SERIAL).
#
# Boots a real `crd serve` daemon process on a Unix socket, then drives
# hundreds of concurrent sessions against it with the `--stress` client
# across several waves, checking the invariants that must hold on ANY
# host:
#
#   * zero cross-session interference — every session's reply stream is
#     byte-identical ("identical: yes" from the stress client);
#   * bounded memory — the daemon's VmRSS after the last wave stays
#     within 35% of its post-first-wave plateau (per-session state is
#     actually reclaimed when sessions close, it does not accrete);
#   * graceful drain — a real SIGTERM makes the daemon exit 0 with its
#     "drained:" summary.
#
# Like ingest_smoke.sh, concurrency only means something when the daemon,
# its workers, and the clients can overlap: on a single-CPU host the whole
# test is a skip (exit 77, the ctest SKIP_RETURN_CODE convention).
#
# Usage: serve_smoke.sh <build-dir>
set -u

BUILD_DIR="${1:?usage: serve_smoke.sh <build-dir>}"
CRD="$BUILD_DIR/tools/crd/crd"

CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$CPUS" -lt 2 ]; then
  echo "serve_smoke: single-CPU host ($CPUS); daemon and clients cannot overlap — skipping" >&2
  exit 77
fi

# Scale the soak to the host class: the full 200-concurrent-session bar
# needs enough CPUs that client threads are not pure scheduling overhead.
if [ "$CPUS" -ge 4 ]; then
  SESSIONS=200
else
  SESSIONS=64
fi
WAVES=4

WORK_DIR="$(mktemp -d)"
SOCK="$WORK_DIR/serve.sock"
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

# A racy recorded trace for the sessions to analyze.
"$CRD" record --stress --producers=3 --events=20000 --ring=1024 \
    --out="$WORK_DIR/trace.crdb" >/dev/null 2>&1
if [ ! -s "$WORK_DIR/trace.crdb" ]; then
  echo "serve_smoke: could not record a stress trace" >&2
  exit 1
fi

"$CRD" serve --socket="$SOCK" >"$WORK_DIR/daemon.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
if [ ! -S "$SOCK" ]; then
  echo "serve_smoke: daemon did not come up" >&2
  cat "$WORK_DIR/daemon.log" >&2
  exit 1
fi

rss_kb() {
  awk '/^VmRSS:/ { print $2 }' "/proc/$DPID/status" 2>/dev/null || echo 0
}

FIRST_RSS=0
for wave in $(seq 1 $WAVES); do
  OUT="$("$CRD" serve --connect="$SOCK" --trace="$WORK_DIR/trace.crdb" \
      --stress --sessions=$SESSIONS --waves=1 2>&1)"
  status=$?
  case "$OUT" in
    *"identical: yes"*) ;;
    *)
      echo "serve_smoke: wave $wave sessions diverged (exit $status):" >&2
      echo "$OUT" >&2
      exit 1
      ;;
  esac
  RSS="$(rss_kb)"
  echo "serve_smoke: wave $wave/$WAVES: $SESSIONS sessions identical, daemon RSS ${RSS} kB"
  [ "$wave" -eq 1 ] && FIRST_RSS="$RSS"
done

FINAL_RSS="$(rss_kb)"
if [ "$FIRST_RSS" -gt 0 ] && \
   ! awk -v a="$FIRST_RSS" -v b="$FINAL_RSS" 'BEGIN { exit !(b <= a * 1.35) }'; then
  echo "serve_smoke: daemon RSS grew ${FIRST_RSS} kB -> ${FINAL_RSS} kB across $WAVES waves (per-session state accreting)" >&2
  exit 1
fi

# Graceful drain: SIGTERM must produce the drain summary and exit 0.
kill -TERM "$DPID"
DRAIN_OK=no
for i in $(seq 1 100); do
  if ! kill -0 "$DPID" 2>/dev/null; then
    DRAIN_OK=yes
    break
  fi
  sleep 0.1
done
if [ "$DRAIN_OK" != yes ]; then
  echo "serve_smoke: daemon did not exit within 10s of SIGTERM" >&2
  exit 1
fi
wait "$DPID"
DEXIT=$?
DPID=""
if [ "$DEXIT" -ne 0 ]; then
  echo "serve_smoke: daemon exited $DEXIT after SIGTERM" >&2
  exit 1
fi
case "$(cat "$WORK_DIR/daemon.log")" in
  *"drained:"*) ;;
  *)
    echo "serve_smoke: no drain summary in daemon log:" >&2
    cat "$WORK_DIR/daemon.log" >&2
    exit 1
    ;;
esac

TOTAL=$((SESSIONS * WAVES))
echo "serve_smoke: $TOTAL sessions across $WAVES waves, RSS ${FIRST_RSS} -> ${FINAL_RSS} kB, clean SIGTERM drain"
exit 0
