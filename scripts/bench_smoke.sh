#!/usr/bin/env bash
# Reduced-rep benchmark smoke pass for CI (the `bench-smoke` ctest label).
#
# Runs the two trajectory benchmarks at a small fixed workload, then diffs
# the emitted JSON against the committed bench/baseline/BENCH_*.json with
# scripts/bench_compare.py: any >15% throughput drop below the (already
# noise-derated) baseline, any race-count drift, or any allocs-per-event
# growth fails the test. Exit 77 (ctest SKIP_RETURN_CODE) when python3 is
# unavailable.
#
# Usage: bench_smoke.sh <build-dir> [repo-root]
set -u

BUILD_DIR="${1:?usage: bench_smoke.sh <build-dir> [repo-root]}"
REPO_ROOT="${2:-$(cd "$(dirname "$0")/.." && pwd)}"

if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_smoke: python3 not found; skipping" >&2
  exit 77
fi

# The workload behind the committed baselines. Changing it requires
# regenerating bench/baseline/ (see that directory's README).
WORKERS=4
QUERIES=1000
REPS=5

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

status=0
run_and_compare() {
  local tool="$1" json="$2" arg1="${3:-$WORKERS}" arg2="${4:-$QUERIES}"
  echo "== $tool ($arg1, $arg2, $REPS reps) =="
  if ! "$BUILD_DIR/bench/$tool" "$arg1" "$arg2" "$REPS" \
      "$OUT_DIR/$json" >/dev/null; then
    echo "bench_smoke: $tool failed" >&2
    status=1
    return
  fi
  python3 "$REPO_ROOT/scripts/bench_compare.py" \
      "$REPO_ROOT/bench/baseline/$json" "$OUT_DIR/$json"
  local rc=$?
  if [ "$rc" -eq 77 ]; then
    # bench_compare refuses cross-host-class diffs (the committed baseline
    # was recorded on a different machine class); that is a skip, not a
    # regression.
    echo "bench_smoke: $tool: baseline from a different host class; skipping diff" >&2
  elif [ "$rc" -ne 0 ]; then
    status=1
  fi
}

run_and_compare wire_throughput BENCH_wire.json
run_and_compare parallel_scaling BENCH_detector.json
# Chunk memoization uses the repetitive-trace workload (bodies,
# repetitions); the tool itself enforces the 2x / 1.2x memo bars and
# race equality across modes, the diff guards against drift.
run_and_compare memo_throughput BENCH_memo.json 16 24
# Live ingestion uses its own workload shape (producers, events/producer):
# per-producer volume must be large enough that a rep is not timer noise.
run_and_compare ingest_throughput BENCH_ingest.json 4 50000
# The detection daemon sweep (sessions, events/session): real sockets and
# a fresh server per rep, so per-session volume carries the signal.
run_and_compare serve_throughput BENCH_serve.json 8 25000

exit "$status"
