#!/usr/bin/env bash
# Builds the Release preset, runs the detector benchmarks and writes the
# machine-readable BENCH_detector.json and BENCH_wire.json trajectory
# artifacts at the repo root.
#
# Usage: scripts/bench.sh [workers] [queries-per-worker] [reps]
set -euo pipefail
cd "$(dirname "$0")/.."

WORKERS="${1:-4}"
QUERIES="${2:-4000}"
REPS="${3:-5}"

cmake --preset release
cmake --build --preset release -j"$(nproc)"

./build-release/bench/parallel_scaling "$WORKERS" "$QUERIES" "$REPS" \
  BENCH_detector.json

# Ingestion throughput: text parse vs binary wire decode vs decode+detect.
# Exits non-zero if binary decode drops below 2x text parse.
./build-release/bench/wire_throughput "$WORKERS" "$QUERIES" "$REPS" \
  BENCH_wire.json

# Chunk-memoized analysis over a repetitive trace: decode vs analyze at
# --memo=off/decode/full. Exits non-zero if memo=full misses the 2x
# (vs off) / 1.2x (vs pure decode) acceptance bars or races drift.
./build-release/bench/memo_throughput 64 16 "$REPS" BENCH_memo.json

# Live multi-producer ingestion: real threads through SPSC rings into the
# collector, across drain/detect/record/drop configurations.
./build-release/bench/ingest_throughput "$WORKERS" 200000 "$REPS" \
  BENCH_ingest.json

# Detection daemon: concurrent sessions over real Unix sockets across a
# sessions x shared-worker-pool sweep.
./build-release/bench/serve_throughput 8 100000 "$REPS" BENCH_serve.json

# Informational microbenchmarks (epoch ablation + shard sweep); failures
# here must not mask the trajectory artifact above.
./build-release/bench/micro_detector --benchmark_min_time=0.05 || true

echo "bench artifacts: $(pwd)/BENCH_detector.json $(pwd)/BENCH_wire.json $(pwd)/BENCH_memo.json $(pwd)/BENCH_ingest.json $(pwd)/BENCH_serve.json"
