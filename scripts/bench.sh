#!/usr/bin/env bash
# Builds the Release preset, runs the detector benchmarks and writes the
# machine-readable BENCH_detector.json trajectory artifact at the repo root.
#
# Usage: scripts/bench.sh [workers] [queries-per-worker] [reps]
set -euo pipefail
cd "$(dirname "$0")/.."

WORKERS="${1:-4}"
QUERIES="${2:-4000}"
REPS="${3:-3}"

cmake --preset release
cmake --build --preset release -j"$(nproc)"

./build-release/bench/parallel_scaling "$WORKERS" "$QUERIES" "$REPS" \
  BENCH_detector.json

# Informational microbenchmarks (epoch ablation + shard sweep); failures
# here must not mask the trajectory artifact above.
./build-release/bench/micro_detector --benchmark_min_time=0.05 || true

echo "bench artifacts: $(pwd)/BENCH_detector.json"
