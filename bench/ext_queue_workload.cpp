//===- bench/ext_queue_workload.cpp - task-queue extension row ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension workload (not in the paper): the producer/consumer task queue
/// under the three analysis configurations. Queues are the least
/// commutative builtin type — nearly every concurrent pair conflicts — so
/// this is the worst case for commutativity race report volume, and the
/// triage summary earns its keep.
///
/// Usage: ./ext_queue_workload [producers] [jobs-per-producer]
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "detect/Summary.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "workloads/QueueWorkload.h"

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>

using namespace crd;

namespace {

struct Row {
  const char *Mode;
  double Seconds = 0;
  size_t Races = 0;
  size_t Distinct = 0;
};

template <typename SinkT, typename Finish>
Row run(const char *Mode, const QueueWorkloadConfig &Config, SinkT &&Sink,
        Finish &&FinishFn) {
  SimRuntime RT(Config.Seed);
  InstrumentedQueue Jobs(RT);
  buildTaskQueue(RT, Jobs, Config);
  auto Start = std::chrono::steady_clock::now();
  RT.run(Sink);
  Row R;
  R.Mode = Mode;
  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  FinishFn(R);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  QueueWorkloadConfig Config;
  Config.Producers = Argc > 1 ? std::atoi(Argv[1]) : 2;
  Config.JobsPerProducer = Argc > 2 ? std::atoi(Argv[2]) : 2000;
  Config.Consumers = Config.Producers;
  Config.MonitorPeeks = Config.JobsPerProducer / 10;
  Config.Seed = 2014;

  DiagnosticEngine Diags;
  auto Rep = translateSpec(queueSpec(), Diags);
  if (!Rep) {
    std::cerr << Diags.toString();
    return 1;
  }

  std::cout << "Extension: task-queue workload — " << Config.Producers
            << " producers / " << Config.Consumers << " consumers x "
            << Config.JobsPerProducer << " jobs\n\n";

  std::vector<Row> Rows;
  {
    NullSink Sink;
    Rows.push_back(run("Uninstrumented", Config, Sink, [](Row &) {}));
  }
  {
    FastTrackDetector Detector;
    DetectorSink<FastTrackDetector> Sink(Detector);
    Rows.push_back(run("FASTTRACK", Config, Sink, [&](Row &R) {
      R.Races = Detector.races().size();
      R.Distinct = Detector.distinctRacyVars();
    }));
  }
  RaceSummary Summary;
  {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(Rep.get());
    DetectorSink<CommutativityRaceDetector> Sink(Detector);
    Rows.push_back(run("RD2 (queue)", Config, Sink, [&](Row &R) {
      R.Races = Detector.races().size();
      R.Distinct = Detector.distinctRacyObjects();
      Summary = RaceSummary::build(Detector.races());
    }));
  }

  std::cout << std::left << std::setw(16) << "Mode" << std::right
            << std::setw(12) << "seconds" << std::setw(18) << "races (dist)"
            << '\n'
            << std::string(46, '-') << '\n';
  for (const Row &R : Rows) {
    std::cout << std::left << std::setw(16) << R.Mode << std::right
              << std::setw(12) << std::fixed << std::setprecision(3)
              << R.Seconds << std::setw(18)
              << (std::string(R.Mode) == "Uninstrumented"
                      ? std::string("-")
                      : std::to_string(R.Races) + " (" +
                            std::to_string(R.Distinct) + ")")
              << '\n';
  }
  std::cout << "\nRD2 triage summary (by access point class):\n"
            << Summary.toString();
  return 0;
}
