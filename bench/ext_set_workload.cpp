//===- bench/ext_set_workload.cpp - set workload extension row ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An extension of Table 2 (not in the paper): the unique-visitors set
/// workload under the three analysis configurations. Demonstrates the ECL
/// set specification — the paper's flagship "beyond SIMPLE" example — on a
/// realistic Fig 1-shaped workload.
///
/// Usage: ./ext_set_workload [writers] [adds-per-writer]
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "detect/Summary.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "workloads/SetWorkload.h"

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>

using namespace crd;

namespace {

struct Row {
  const char *Mode;
  double Seconds = 0;
  size_t Races = 0;
  size_t Distinct = 0;
};

template <typename SinkT, typename Finish>
Row run(const char *Mode, const SetWorkloadConfig &Config, SinkT &&Sink,
        Finish &&FinishFn) {
  SimRuntime RT(Config.Seed);
  InstrumentedSet Visitors(RT);
  buildUniqueVisitors(RT, Visitors, Config);
  auto Start = std::chrono::steady_clock::now();
  RT.run(Sink);
  Row R;
  R.Mode = Mode;
  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  FinishFn(R);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  SetWorkloadConfig Config;
  Config.WriterThreads = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.AddsPerWriter = Argc > 2 ? std::atoi(Argv[2]) : 2000;
  Config.Seed = 2014;

  DiagnosticEngine Diags;
  auto Rep = translateSpec(setSpec(), Diags);
  if (!Rep) {
    std::cerr << Diags.toString();
    return 1;
  }

  std::cout << "Extension: unique-visitors set workload — "
            << Config.WriterThreads << " writers x " << Config.AddsPerWriter
            << " adds, visitor range " << Config.VisitorRange << "\n\n";

  std::vector<Row> Rows;
  {
    NullSink Sink;
    Rows.push_back(run("Uninstrumented", Config, Sink, [](Row &) {}));
  }
  {
    FastTrackDetector Detector;
    DetectorSink<FastTrackDetector> Sink(Detector);
    Rows.push_back(run("FASTTRACK", Config, Sink, [&](Row &R) {
      R.Races = Detector.races().size();
      R.Distinct = Detector.distinctRacyVars();
    }));
  }
  RaceSummary Summary;
  {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(Rep.get());
    DetectorSink<CommutativityRaceDetector> Sink(Detector);
    Rows.push_back(run("RD2 (set spec)", Config, Sink, [&](Row &R) {
      R.Races = Detector.races().size();
      R.Distinct = Detector.distinctRacyObjects();
      Summary = RaceSummary::build(Detector.races());
    }));
  }

  std::cout << std::left << std::setw(16) << "Mode" << std::right
            << std::setw(12) << "seconds" << std::setw(18) << "races (dist)"
            << '\n'
            << std::string(46, '-') << '\n';
  for (const Row &R : Rows) {
    std::cout << std::left << std::setw(16) << R.Mode << std::right
              << std::setw(12) << std::fixed << std::setprecision(3)
              << R.Seconds << std::setw(18)
              << (std::string(R.Mode) == "Uninstrumented"
                      ? std::string("-")
                      : std::to_string(R.Races) + " (" +
                            std::to_string(R.Distinct) + ")")
              << '\n';
  }
  std::cout << "\nRD2 triage summary:\n" << Summary.toString();
  return 0;
}
