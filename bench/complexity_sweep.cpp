//===- bench/complexity_sweep.cpp - §5.4 per-action cost sweep ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §5.4 complexity claim as a measurable sweep: total analysis time of
/// a trace with N dictionary actions under (a) Algorithm 1 with the
/// ECL-translated representation (Θ(1) probes per action, so Θ(N) total)
/// and (b) the direct specification-evaluating detector (Θ(N) checks per
/// action, so Θ(N²) total). Reported complexity (benchmark::oN / oNSquared
/// fits) makes the asymptotic gap visible in the output.
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/DirectDetector.h"
#include "spec/Builtins.h"
#include "trace/TraceBuilder.h"
#include "translate/Translator.h"

#include <benchmark/benchmark.h>

using namespace crd;

namespace {

/// A two-thread trace of N puts on one dictionary: half fresh inserts to
/// distinct keys, half overwrites of a hot key (so both w:k and resize
/// stay busy but few races fire).
Trace dictionaryTrace(size_t N) {
  TraceBuilder TB;
  TB.fork(0, 1);
  for (size_t I = 0; I != N; ++I) {
    uint32_t Tid = I % 2;
    if (I % 2 == 0)
      TB.invoke(Tid, 1, "put",
                {Value::integer(static_cast<int64_t>(I)), Value::integer(1)},
                Value::nil());
    else
      TB.invoke(Tid, 1, "get", {Value::integer(static_cast<int64_t>(I - 1))},
                Value::integer(1));
  }
  return TB.take();
}

const TranslatedRep &dictRep() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(dictionarySpec(), Diags);
    if (!R)
      abort();
    return R;
  }();
  return *Rep;
}

void BM_Algorithm1(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Trace T = dictionaryTrace(N);
  for (auto _ : State) {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(&dictRep());
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetComplexityN(static_cast<int64_t>(N));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}

void BM_DirectDetector(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  Trace T = dictionaryTrace(N);
  for (auto _ : State) {
    DirectCommutativityDetector Detector;
    Detector.setDefaultSpec(&dictionarySpec());
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetComplexityN(static_cast<int64_t>(N));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) * N);
}

} // namespace

BENCHMARK(BM_Algorithm1)->RangeMultiplier(4)->Range(64, 16384)->Complexity();
BENCHMARK(BM_DirectDetector)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Complexity();

BENCHMARK_MAIN();
