//===- bench/micro_vectorclock.cpp - vector clock microbenchmarks -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "hb/VectorClockState.h"
#include "support/VectorClock.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace crd;

namespace {

VectorClock randomClock(std::mt19937 &Rng, size_t Threads) {
  std::vector<uint32_t> Components(Threads);
  for (uint32_t &C : Components)
    C = Rng() % 1000 + 1;
  return VectorClock(std::move(Components));
}

void BM_VectorClockLeq(benchmark::State &State) {
  std::mt19937 Rng(42);
  size_t Threads = static_cast<size_t>(State.range(0));
  VectorClock A = randomClock(Rng, Threads);
  VectorClock B = VectorClock::join(A, randomClock(Rng, Threads));
  for (auto _ : State) {
    benchmark::DoNotOptimize(A.leq(B));
    benchmark::DoNotOptimize(B.leq(A));
  }
}

void BM_VectorClockJoin(benchmark::State &State) {
  std::mt19937 Rng(42);
  size_t Threads = static_cast<size_t>(State.range(0));
  VectorClock A = randomClock(Rng, Threads);
  VectorClock B = randomClock(Rng, Threads);
  for (auto _ : State) {
    VectorClock C = A;
    C.joinWith(B);
    benchmark::DoNotOptimize(C);
  }
}

// Scalar twins of the two kernels above: together with the dispatched
// variants swept over the same widths, this is the SIMD-speedup curve for
// the clock kernels (flat in a CRD_DISABLE_SIMD build, where both names
// run the same scalar code).
void BM_VectorClockLeqScalar(benchmark::State &State) {
  std::mt19937 Rng(42);
  size_t Threads = static_cast<size_t>(State.range(0));
  VectorClock A = randomClock(Rng, Threads);
  VectorClock B = VectorClock::join(A, randomClock(Rng, Threads));
  for (auto _ : State) {
    benchmark::DoNotOptimize(A.leqScalar(B));
    benchmark::DoNotOptimize(B.leqScalar(A));
  }
}

void BM_VectorClockJoinScalar(benchmark::State &State) {
  std::mt19937 Rng(42);
  size_t Threads = static_cast<size_t>(State.range(0));
  VectorClock A = randomClock(Rng, Threads);
  VectorClock B = randomClock(Rng, Threads);
  for (auto _ : State) {
    VectorClock C = A;
    C.joinWithScalar(B);
    benchmark::DoNotOptimize(C);
  }
}

void BM_VectorClockStateSyncEvents(benchmark::State &State) {
  // Fork/acquire/release churn across 8 threads and 4 locks.
  for (auto _ : State) {
    VectorClockState VCState;
    for (uint32_t T = 1; T != 8; ++T)
      VCState.process(Event::fork(ThreadId(0), ThreadId(T)));
    for (int I = 0; I != 64; ++I) {
      ThreadId T(static_cast<uint32_t>(I % 8));
      LockId L(static_cast<uint32_t>(I % 4));
      VCState.process(Event::acquire(T, L));
      VCState.process(Event::release(T, L));
    }
    benchmark::DoNotOptimize(VCState.numThreads());
  }
  State.SetItemsProcessed(State.iterations() * (7 + 128));
}

} // namespace

// Width sweep: residues mod the 4-lane group size (5, 7), the SmallVec
// inline/heap boundary (8, 9), and wide clocks where the SIMD loop
// dominates (16..64).
#define CRD_CLOCK_WIDTHS \
  ->Arg(4)->Arg(5)->Arg(7)->Arg(8)->Arg(9)->Arg(16)->Arg(32)->Arg(64)
BENCHMARK(BM_VectorClockLeq) CRD_CLOCK_WIDTHS;
BENCHMARK(BM_VectorClockLeqScalar) CRD_CLOCK_WIDTHS;
BENCHMARK(BM_VectorClockJoin) CRD_CLOCK_WIDTHS;
BENCHMARK(BM_VectorClockJoinScalar) CRD_CLOCK_WIDTHS;
BENCHMARK(BM_VectorClockStateSyncEvents);

BENCHMARK_MAIN();
