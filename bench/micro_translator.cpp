//===- bench/micro_translator.cpp - translator / parser microbenchmarks -------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "spec/Builtins.h"
#include "spec/SpecParser.h"
#include "translate/Translator.h"

#include <benchmark/benchmark.h>

using namespace crd;

namespace {

const char *DictionarySource = R"(
object dictionary {
  method put(k, v) / p;
  method get(k) / v;
  method size() / r;
  commute put(k1, v1)/p1, put(k2, v2)/p2 :
      k1 != k2 || (v1 == p1 && v2 == p2);
  commute put(k1, v1)/p1, get(k2)/v2 : k1 != k2 || v1 == p1;
  commute put(k1, v1)/p1, size()/r :
      (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
  commute get(k1)/v1, get(k2)/v2 : true;
  commute get(k1)/v1, size()/r : true;
  commute size()/r1, size()/r2 : true;
}
)";

void BM_ParseDictionarySpec(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Spec = parseObjectSpec(DictionarySource, Diags);
    benchmark::DoNotOptimize(Spec);
  }
}

void BM_TranslateDictionary(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Rep = translateSpec(dictionarySpec(), Diags);
    benchmark::DoNotOptimize(Rep);
  }
}

void BM_TranslateDictionaryNoOptimizations(benchmark::State &State) {
  TranslationOptions Off;
  Off.DropIrrelevantAtoms = false;
  Off.MergeCongruentSlots = false;
  Off.RemoveConflictFree = false;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Rep = translateSpec(dictionarySpec(), Diags, Off);
    benchmark::DoNotOptimize(Rep);
  }
}

void BM_TranslateSet(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Rep = translateSpec(setSpec(), Diags);
    benchmark::DoNotOptimize(Rep);
  }
}

void BM_TouchesPerAction(benchmark::State &State) {
  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep)
    abort();
  Action Put(ObjectId(1), symbol("put"),
             {Value::string("a.com"), Value::integer(7)}, Value::nil());
  std::vector<AccessPoint> Out;
  for (auto _ : State) {
    Out.clear();
    Rep->touches(Put, Out);
    benchmark::DoNotOptimize(Out.size());
  }
}

} // namespace

BENCHMARK(BM_ParseDictionarySpec);
BENCHMARK(BM_TranslateDictionary);
BENCHMARK(BM_TranslateDictionaryNoOptimizations);
BENCHMARK(BM_TranslateSet);
BENCHMARK(BM_TouchesPerAction);

BENCHMARK_MAIN();
