//===- bench/ablation_passes.cpp - appendix A.3 pass ablation -----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the appendix A.3 simplification passes (dropping /
/// replacement / cleanup): detector throughput over the same trace with
/// the raw §6.2 representation vs. the fully optimized one, plus the
/// representation sizes. The optimized representation touches fewer points
/// per action (conflict-free slots are deactivated) and keeps smaller
/// active sets.
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "spec/Builtins.h"
#include "trace/TraceBuilder.h"
#include "translate/Translator.h"

#include <benchmark/benchmark.h>

using namespace crd;

namespace {

Trace workload(size_t N) {
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2);
  for (size_t I = 0; I != N; ++I) {
    uint32_t Tid = static_cast<uint32_t>(I % 3);
    int64_t Key = static_cast<int64_t>(I % 32);
    switch (I % 4) {
    case 0:
    case 1:
      TB.invoke(Tid, 1, "put", {Value::integer(Key), Value::integer(1)},
                Value::nil());
      break;
    case 2:
      TB.invoke(Tid, 1, "get", {Value::integer(Key)}, Value::integer(1));
      break;
    case 3:
      TB.invoke(Tid, 1, "size", {}, Value::integer(8));
      break;
    }
  }
  return TB.take();
}

std::unique_ptr<TranslatedRep> makeRep(bool Optimized) {
  TranslationOptions Options;
  Options.DropIrrelevantAtoms = Optimized;
  Options.MergeCongruentSlots = Optimized;
  Options.RemoveConflictFree = Optimized;
  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags, Options);
  if (!Rep)
    abort();
  return Rep;
}

void runDetector(benchmark::State &State, bool Optimized) {
  auto Rep = makeRep(Optimized);
  Trace T = workload(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(Rep.get());
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
  State.counters["classes"] = static_cast<double>(Rep->numClasses());
}

void BM_DetectorRawRepresentation(benchmark::State &State) {
  runDetector(State, /*Optimized=*/false);
}

void BM_DetectorOptimizedRepresentation(benchmark::State &State) {
  runDetector(State, /*Optimized=*/true);
}

} // namespace

BENCHMARK(BM_DetectorRawRepresentation)->Arg(4096);
BENCHMARK(BM_DetectorOptimizedRepresentation)->Arg(4096);

BENCHMARK_MAIN();
