//===- bench/serve_throughput.cpp - detection daemon throughput --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the `crd serve` daemon (src/serve) end to end: an in-process
/// Server on a Unix-domain socket, real client threads streaming a
/// pre-encoded binary wire trace through the full protocol path —
/// handshake, envelope framing, chunk reassembly, per-session decode,
/// detection, reply emission — across a sessions × shared-worker-pool
/// sweep:
///
///   * serve/sessions=1,workers=1   — the single-tenant floor;
///   * serve/sessions=S,workers=1   — S sessions contending for one
///     detection worker (queueing overhead);
///   * serve/sessions=S,workers=2   — minimal overlap;
///   * serve/sessions=S,workers=4   — the shared-pool steady state.
///
/// The workload gives every logical thread a private object and a
/// private lock, so the race count is deterministically zero (the
/// correctness anchor bench_compare.py diffs) regardless of session
/// interleaving; every session must also report exactly the encoded
/// event count, or the run aborts. Built with CRD_BENCH_ALLOC_COUNT:
/// allocs_per_event covers the daemon's decode + detection + reply path.
///
/// Emits BENCH_serve.json (bench/report.h). On a single-CPU host the
/// clients, the I/O thread, and the workers all timeshare, so the
/// artifact carries serve_overlap_observable=false and bench_compare.py's
/// host_cpus gate keeps such numbers from being diffed across classes.
///
/// Usage: ./serve_throughput [sessions] [events-per-session] [reps]
///                           [json-path]
///
//===----------------------------------------------------------------------===//

#include "report.h"

#include "access/DictionaryRep.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "wire/WireWriter.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

using namespace crd;

namespace {

/// Encodes \p Events invoke/lock events over \p Threads logical threads,
/// each touching only its PRIVATE object under its PRIVATE lock —
/// race-free by construction, so every configuration's race anchor is
/// exactly 0.
std::string encodeTrace(size_t Events, unsigned Threads) {
  std::ostringstream OS;
  wire::WireWriter Writer(OS);
  Symbol Put = symbol("put");
  Symbol Get = symbol("get");
  uint64_t S = 0x9e3779b97f4a7c15ull;
  for (size_t I = 0; I != Events; ++I) {
    ThreadId Tid(static_cast<uint32_t>(I % Threads));
    if (I % 64 == 0) {
      Writer.append(Event::acquire(Tid, LockId(Tid.index())));
      continue;
    }
    if (I % 64 == 63) {
      Writer.append(Event::release(Tid, LockId(Tid.index())));
      continue;
    }
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    Value Key = Value::integer(static_cast<int64_t>(S % 256));
    if (S % 4 != 0) {
      Value Vals[3] = {Key, Value::integer(static_cast<int64_t>(S >> 32)),
                       Value::nil()};
      Action View(ObjectId(Tid.index()), Put, Vals, 2, 1);
      Action Owned = View;
      Writer.append(Event::invoke(Tid, std::move(Owned)));
    } else {
      Value Vals[2] = {Key, Value::nil()};
      Action View(ObjectId(Tid.index()), Get, Vals, 1, 1);
      Action Owned = View;
      Writer.append(Event::invoke(Tid, std::move(Owned)));
    }
  }
  Writer.finish();
  return OS.str();
}

/// One client session over the real socket: handshake, the trace as 'W'
/// frames, 'E', then the reply stream. Returns the summary's race count;
/// aborts on protocol failure or an event-count mismatch (a dropped or
/// duplicated chunk would silently skew the throughput number).
size_t runClient(const std::string &SockPath, const std::string &Trace,
                 size_t ExpectEvents) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    std::abort();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SockPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    std::abort();

  std::string Msg = std::string(serve::ProtocolTag) + "\n";
  constexpr size_t Slice = 60000;
  for (size_t Pos = 0; Pos < Trace.size(); Pos += Slice) {
    size_t N = std::min(Slice, Trace.size() - Pos);
    serve::appendFrameHeader(Msg, serve::FrameType::Wire,
                             static_cast<uint32_t>(N));
    Msg.append(Trace, Pos, N);
  }
  serve::appendFrameHeader(Msg, serve::FrameType::End, 0);
  size_t Off = 0;
  while (Off != Msg.size()) {
    ssize_t W = ::write(Fd, Msg.data() + Off, Msg.size() - Off);
    if (W <= 0) {
      if (errno == EINTR)
        continue;
      std::abort();
    }
    Off += static_cast<size_t>(W);
  }
  ::shutdown(Fd, SHUT_WR);

  std::string Reply;
  char Buf[65536];
  for (;;) {
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R < 0 && errno == EINTR)
      continue;
    if (R <= 0)
      break;
    Reply.append(Buf, static_cast<size_t>(R));
  }
  ::close(Fd);

  size_t Summary = Reply.find("\"type\":\"summary\"");
  if (Summary == std::string::npos)
    std::abort();
  auto Field = [&](const char *Name) -> size_t {
    std::string Needle = std::string("\"") + Name + "\":";
    size_t At = Reply.find(Needle, Summary);
    if (At == std::string::npos)
      std::abort();
    return std::strtoull(Reply.c_str() + At + Needle.size(), nullptr, 10);
  };
  if (Field("events") != ExpectEvents)
    std::abort();
  return Field("races");
}

/// One timed repetition: a fresh daemon with \p Workers pool workers,
/// \p Sessions concurrent clients each streaming the whole trace.
size_t runOnce(unsigned Sessions, unsigned Workers, const std::string &Trace,
               size_t ExpectEvents, const DictionaryRep &Rep,
               const std::string &SockPath) {
  serve::ServeOptions Opts;
  Opts.UnixPath = SockPath;
  Opts.Workers = Workers;
  Opts.Provider = &Rep;
  serve::Server Server(std::move(Opts));
  std::string Error;
  if (!Server.start(Error)) {
    std::cerr << "serve_throughput: " << Error << "\n";
    std::abort();
  }
  std::thread Runner([&] { Server.run(); });

  std::vector<size_t> Races(Sessions, 0);
  std::vector<std::thread> Clients;
  Clients.reserve(Sessions);
  for (unsigned C = 0; C != Sessions; ++C)
    Clients.emplace_back([&, C] {
      Races[C] = runClient(SockPath, Trace, ExpectEvents);
    });
  for (std::thread &T : Clients)
    T.join();
  Server.requestStop();
  Runner.join();

  size_t Total = 0;
  for (size_t R : Races)
    Total += R;
  return Total;
}

unsigned parsePositive(const char *Arg, const char *Name) {
  char *End = nullptr;
  unsigned long V = std::strtoul(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V == 0) {
    std::cerr << "invalid " << Name << " '" << Arg
              << "' (expected a positive integer)\n"
              << "usage: serve_throughput [sessions] [events-per-session]"
                 " [reps] [json-path]\n";
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Sessions = Argc > 1 ? parsePositive(Argv[1], "sessions") : 8;
  unsigned Events =
      Argc > 2 ? parsePositive(Argv[2], "events-per-session") : 100000;
  unsigned Reps = Argc > 3 ? parsePositive(Argv[3], "reps") : 5;
  std::string JsonPath = Argc > 4 ? Argv[4] : "BENCH_serve.json";
  constexpr unsigned Warmup = 1;

  DictionaryRep Rep;
  const std::string Trace = encodeTrace(Events, /*Threads=*/4);
  const std::string SockPath =
      "/tmp/crd_serve_bench_" + std::to_string(::getpid()) + ".sock";

  std::cout << "serve daemon: " << Sessions << " sessions x " << Events
            << " events (" << Trace.size() << " wire bytes), median of "
            << Reps << " reps after " << Warmup << " warmup\n\n";

  bench::BenchReport Report("serve_throughput", "private-dictionary-stress");
  unsigned HostCpus = std::thread::hardware_concurrency();
  Report.setFlag("serve_overlap_observable", HostCpus > 1);
  if (HostCpus <= 1)
    std::cout << "warning: single-CPU host; clients, the I/O thread, and "
                 "the workers timeshare — throughput numbers measure "
                 "overhead only\n\n";

  struct Config {
    unsigned Sessions;
    unsigned Workers;
  };
  const Config Configs[] = {
      {1, 1}, {Sessions, 1}, {Sessions, 2}, {Sessions, 4}};

  for (const Config &C : Configs) {
    std::string Name = "serve/sessions=" + std::to_string(C.Sessions) +
                       ",workers=" + std::to_string(C.Workers);
    size_t Total = size_t(C.Sessions) * Events;
    bench::BenchEntry E = bench::measureMedian(
        Name, /*Shards=*/C.Workers, Total, Warmup, Reps, [&] {
          return runOnce(C.Sessions, C.Workers, Trace, Events, Rep,
                         SockPath);
        });
    if (E.Races != 0) {
      std::cerr << Name
                << ": race-free workload reported races: " << E.Races
                << "\n";
      return 1;
    }
    Report.add(E);
    std::cout << "  " << std::left << std::setw(30) << Name << std::right
              << std::setw(12) << static_cast<uint64_t>(E.EventsPerSec)
              << " events/s";
    if (E.AllocsPerEvent >= 0)
      std::cout << "  allocs/event=" << std::fixed << std::setprecision(4)
                << E.AllocsPerEvent;
    std::cout << "\n";
  }
  ::unlink(SockPath.c_str());

  if (!Report.write(JsonPath)) {
    std::cerr << "failed to write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";
  return 0;
}
