//===- bench/ingest_throughput.cpp - live multi-producer ingestion ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the live ingestion front-end (src/ingest): real producer
/// threads recording through per-thread SPSC rings into the collector
/// merge, across the sink configurations that matter:
///
///   * ingest/drain        — rings + collector only (the merge ceiling);
///   * ingest/detect-seq   — collector feeding live sequential detection
///     (the `crd record --stress` hot path);
///   * ingest/record-wire  — collector feeding the binary wire encoder
///     (record-now-analyze-later), output discarded;
///   * ingest/drop-newest  — DropNewest backpressure under a deliberately
///     undersized ring; drops are reported in the JSON.
///
/// The workload gives every producer a private object and a private lock,
/// so the race count is deterministically zero (the correctness anchor
/// bench_compare.py diffs) regardless of merge interleaving. Built with
/// CRD_BENCH_ALLOC_COUNT: allocs_per_event in the emitted JSON covers the
/// whole run — producer record loops, collector drain, detection — and
/// its steady state is the record-path-is-allocation-free acceptance bar.
///
/// Emits BENCH_ingest.json (bench/report.h). Note: on a single-CPU host
/// the producers, the collector, and the detector all timeshare, so the
/// aggregate throughput measures overhead, not pipelining; the artifact
/// carries live_overlap_observable=false and bench_compare.py's host_cpus
/// gate keeps such numbers from being diffed across host classes.
///
/// Usage: ./ingest_throughput [producers] [events-per-producer] [reps]
///                            [json-path]
///
//===----------------------------------------------------------------------===//

#include "report.h"

#include "access/DictionaryRep.h"
#include "ingest/Session.h"
#include "wire/StreamPipeline.h"
#include "wire/WireWriter.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <optional>
#include <streambuf>
#include <thread>
#include <vector>

using namespace crd;
using namespace crd::ingest;

namespace {

/// Discards everything written to it without buffering or allocating, so
/// the wire-recording configuration measures encoding, not I/O, and the
/// allocation counter sees the encoder alone.
class NullBuf : public std::streambuf {
protected:
  int overflow(int C) override { return C == EOF ? 0 : C; }
  std::streamsize xsputn(const char *, std::streamsize N) override {
    return N;
  }
};

struct BenchConfig {
  const char *Name;
  BackpressurePolicy Policy = BackpressurePolicy::Block;
  size_t RingCapacity = 4096;
  bool Detect = false;
  bool Wire = false;
};

/// One producer's record loop: invokes on a PRIVATE object under a
/// PRIVATE lock — race-free by construction, so every configuration's
/// race anchor is exactly 0. All actions hold ≤ 3 values, staying in the
/// Action's inline storage: the loop performs no heap allocation.
void producerBody(Recorder R, uint64_t Events, Symbol Put, Symbol Get) {
  const uint32_t Tid = R.thread().index();
  uint64_t S = (Tid + 1) * 0x9e3779b97f4a7c15ull | 1;
  for (uint64_t I = 0; I != Events; ++I) {
    if (I % 64 == 0) {
      R.acquire(LockId(Tid));
      continue;
    }
    if (I % 64 == 63) {
      R.release(LockId(Tid));
      continue;
    }
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    Value Key = Value::integer(static_cast<int64_t>(S % 256));
    if (S % 4 != 0) {
      Value Vals[3] = {Key, Value::integer(static_cast<int64_t>(S >> 32)),
                       Value::nil()};
      Action View(ObjectId(Tid), Put, Vals, 2, 1);
      Action Owned = View;
      R.record(Event::invoke(R.thread(), std::move(Owned)));
    } else {
      Value Vals[2] = {Key, Value::nil()};
      Action View(ObjectId(Tid), Get, Vals, 1, 1);
      Action Owned = View;
      R.record(Event::invoke(R.thread(), std::move(Owned)));
    }
  }
  R.finish();
}

struct RunResult {
  uint64_t Collected = 0;
  uint64_t Drops = 0;
  size_t Races = 0;
};

RunResult runOnce(const BenchConfig &C, unsigned Producers, uint64_t Events,
                  const DictionaryRep &Rep, Symbol Put, Symbol Get) {
  SessionOptions Opts;
  Opts.RingCapacity = C.RingCapacity;
  Opts.Policy = C.Policy;
  Session S(Opts);

  std::optional<wire::StreamPipeline> Pipeline;
  if (C.Detect) {
    Pipeline.emplace(wire::PipelineOptions{});
    Pipeline->setDefaultProvider(&Rep);
    S.setPipeline(&*Pipeline);
  }
  NullBuf Discard;
  std::ostream NullOS(&Discard);
  std::optional<wire::WireWriter> Writer;
  if (C.Wire) {
    Writer.emplace(NullOS);
    S.setWireWriter(&*Writer);
  }

  std::vector<Recorder> Recs;
  Recs.reserve(Producers);
  for (unsigned T = 0; T != Producers; ++T)
    Recs.push_back(S.attach(ThreadId(T)));
  S.start();
  std::vector<std::thread> Threads;
  Threads.reserve(Producers);
  for (unsigned T = 0; T != Producers; ++T)
    Threads.emplace_back(producerBody, std::move(Recs[T]), Events, Put, Get);
  for (std::thread &T : Threads)
    T.join();
  S.stop();
  if (Pipeline)
    Pipeline->finish();
  if (Writer)
    Writer->finish();

  RunResult R;
  R.Collected = S.eventsCollected();
  IngestMetrics M = S.metricsSnapshot();
  R.Drops = M.DropsTotal;
  if (Pipeline)
    R.Races = Pipeline->races().size();
  // Block is lossless by contract; a mismatch is a bug, not noise.
  if (C.Policy == BackpressurePolicy::Block &&
      R.Collected != uint64_t(Producers) * Events)
    std::abort();
  if (C.Policy == BackpressurePolicy::DropNewest &&
      R.Collected + R.Drops != uint64_t(Producers) * Events)
    std::abort();
  return R;
}

unsigned parsePositive(const char *Arg, const char *Name) {
  char *End = nullptr;
  unsigned long V = std::strtoul(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V == 0) {
    std::cerr << "invalid " << Name << " '" << Arg
              << "' (expected a positive integer)\n"
              << "usage: ingest_throughput [producers] [events-per-producer]"
                 " [reps] [json-path]\n";
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Producers = Argc > 1 ? parsePositive(Argv[1], "producers") : 4;
  unsigned Events =
      Argc > 2 ? parsePositive(Argv[2], "events-per-producer") : 200000;
  unsigned Reps = Argc > 3 ? parsePositive(Argv[3], "reps") : 5;
  std::string JsonPath = Argc > 4 ? Argv[4] : "BENCH_ingest.json";
  constexpr unsigned Warmup = 1;

  DictionaryRep Rep;
  Symbol Put = symbol("put");
  Symbol Get = symbol("get");
  const size_t Total = size_t(Producers) * Events;

  std::cout << "live ingestion: " << Producers << " producers x " << Events
            << " events, median of " << Reps << " reps after " << Warmup
            << " warmup\n\n";

  bench::BenchReport Report("ingest_throughput", "private-dictionary-stress");
  unsigned HostCpus = std::thread::hardware_concurrency();
  // Mirrors parallel_scaling's flag: with a single hardware thread the
  // producers and the collector cannot actually overlap, so aggregate
  // events/sec measures context-switch overhead, not pipelining.
  Report.setFlag("live_overlap_observable", HostCpus > 1);
  if (HostCpus <= 1)
    std::cout << "warning: single-CPU host; producers, collector, and "
                 "detector timeshare — throughput numbers measure overhead "
                 "only\n\n";

  const BenchConfig Configs[] = {
      {"ingest/drain", BackpressurePolicy::Block, 4096, false, false},
      {"ingest/detect-seq", BackpressurePolicy::Block, 4096, true, false},
      {"ingest/record-wire", BackpressurePolicy::Block, 4096, false, true},
      {"ingest/drop-newest", BackpressurePolicy::DropNewest, 256, false,
       false},
  };

  for (const BenchConfig &C : Configs) {
    uint64_t LastDrops = 0;
    bench::BenchEntry E = bench::measureMedian(
        C.Name, /*Shards=*/Producers, Total, Warmup, Reps, [&] {
          RunResult R = runOnce(C, Producers, Events, Rep, Put, Get);
          LastDrops = R.Drops;
          return R.Races;
        });
    if (C.Policy == BackpressurePolicy::DropNewest)
      E.Drops = static_cast<int64_t>(LastDrops);
    if (E.Races != 0) {
      std::cerr << C.Name
                << ": race-free workload reported races: " << E.Races << "\n";
      return 1;
    }
    Report.add(E);
    std::cout << "  " << std::left << std::setw(20) << C.Name << std::right
              << std::setw(12) << static_cast<uint64_t>(E.EventsPerSec)
              << " events/s";
    if (E.AllocsPerEvent >= 0)
      std::cout << "  allocs/event=" << std::fixed << std::setprecision(4)
                << E.AllocsPerEvent;
    if (E.Drops >= 0)
      std::cout << "  drops=" << E.Drops;
    std::cout << "\n";
  }

  if (!Report.write(JsonPath)) {
    std::cerr << "failed to write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";
  return 0;
}
