//===- bench/memo_throughput.cpp - chunk-memoized analysis throughput ---------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures analysis throughput over a chunk-repetitive trace (see
/// workloads/RepetitiveTrace.h — distinct bodies × many repetitions, each
/// body one byte-identical wire chunk) across the memoization modes:
///
///   * wire/decode          — WireReader draining the encoding (no cache);
///   * analyze/memo=off     — decode + sequential detection, cold path;
///   * analyze/memo=decode  — repeated chunks skip varint/delta decode;
///   * analyze/memo=full    — repeated chunks replay detector summaries.
///
/// The acceptance bars for the memo layer: analyze/memo=full must beat
/// analyze/memo=off by ≥ 2× AND beat wire/decode (pure decode, no
/// detection at all) by ≥ 1.2× — i.e. memoized analysis is faster than
/// the trace can even be decoded. Races must be identical in every mode.
/// Emits a machine-readable BENCH_memo.json (see bench/report.h).
///
/// Usage: ./memo_throughput [bodies] [repetitions] [reps] [json-path]
///
//===----------------------------------------------------------------------===//

#include "report.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "wire/StreamPipeline.h"
#include "wire/WireReader.h"
#include "workloads/RepetitiveTrace.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>

using namespace crd;
using namespace crd::wire;

namespace {

void printRow(const bench::BenchEntry &E) {
  std::cout << "  " << std::left << std::setw(22) << E.Name << std::right
            << std::setw(12) << static_cast<uint64_t>(E.EventsPerSec)
            << " events/s  races=" << E.Races << "\n";
}

unsigned parsePositive(const char *Arg, const char *Name) {
  char *End = nullptr;
  unsigned long V = std::strtoul(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V == 0) {
    std::cerr << "invalid " << Name << " '" << Arg
              << "' (expected a positive integer)\n"
              << "usage: memo_throughput [bodies] [repetitions] [reps] "
                 "[json-path]\n";
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Bodies = Argc > 1 ? parsePositive(Argv[1], "bodies") : 64;
  unsigned Repetitions =
      Argc > 2 ? parsePositive(Argv[2], "repetitions") : 16;
  unsigned Reps = Argc > 3 ? parsePositive(Argv[3], "reps") : 3;
  std::string JsonPath = Argc > 4 ? Argv[4] : "BENCH_memo.json";

  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep) {
    std::cerr << "spec translation failed:\n" << Diags.toString();
    return 1;
  }

  RepetitiveTraceConfig Config;
  Config.DistinctBodies = Bodies;
  Config.Repetitions = Repetitions;
  std::ostringstream WireOS;
  size_t Events = writeRepetitiveTrace(WireOS, Config);
  std::string Wire = WireOS.str();

  std::cout << "repetitive trace: " << Events << " events, " << Bodies
            << " bodies x " << Repetitions << " repetitions, " << Wire.size()
            << " wire bytes, median of " << Reps << " reps\n\n";

  bench::BenchReport Report("memo_throughput", "repetitive-dictionary");

  auto analyze = [&](MemoMode Memo) {
    std::istringstream In(Wire);
    DiagnosticEngine D;
    BinaryStreamSource Source(In, D);
    PipelineOptions Opts;
    Opts.Memo = Memo;
    StreamPipeline P(Opts);
    P.setDefaultProvider(Rep.get());
    StreamSummary S = P.run(Source);
    if (Source.failed() || S.Events != Events)
      std::abort();
    return S.Races;
  };

  bench::BenchEntry Decode =
      bench::measureMedian("wire/decode", 0, Events, 1, Reps, [&] {
        std::istringstream In(Wire);
        DiagnosticEngine D;
        WireReader Reader(In, D);
        Event E = Event::txBegin(ThreadId(0));
        while (Reader.next(E))
          ;
        if (Reader.failed() || Reader.eventsRead() != Events)
          std::abort();
        return size_t(0);
      });
  Report.add(Decode);
  printRow(Decode);

  bench::BenchEntry Off = bench::measureMedian(
      "analyze/memo=off", 0, Events, 1, Reps,
      [&] { return analyze(MemoMode::Off); });
  Report.add(Off);
  printRow(Off);

  bench::BenchEntry DecodeMemo = bench::measureMedian(
      "analyze/memo=decode", 0, Events, 1, Reps,
      [&] { return analyze(MemoMode::Decode); });
  Report.add(DecodeMemo);
  printRow(DecodeMemo);

  bench::BenchEntry Full = bench::measureMedian(
      "analyze/memo=full", 0, Events, 1, Reps,
      [&] { return analyze(MemoMode::Full); });
  Report.add(Full);
  printRow(Full);

  if (Off.Races != DecodeMemo.Races || Off.Races != Full.Races) {
    std::cerr << "race count mismatch across memo modes (off=" << Off.Races
              << " decode=" << DecodeMemo.Races << " full=" << Full.Races
              << ")\n";
    return 1;
  }

  double VsOff = Off.Seconds / Full.Seconds;
  double VsDecode = Decode.Seconds / Full.Seconds;
  std::cout << "\n  memo=full speedup over memo=off:    " << std::fixed
            << std::setprecision(2) << VsOff << "x"
            << (VsOff >= 2.0 ? "" : "  (below the 2x acceptance bar!)")
            << "\n  memo=full speedup over pure decode: " << VsDecode << "x"
            << (VsDecode >= 1.2 ? "" : "  (below the 1.2x acceptance bar!)")
            << "\n";

  if (!Report.write(JsonPath)) {
    std::cerr << "failed to write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";
  return (VsOff >= 2.0 && VsDecode >= 1.2) ? 0 : 1;
}
