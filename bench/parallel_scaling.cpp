//===- bench/parallel_scaling.cpp - shard-scaling on the H2 workload ----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures detector throughput (trace events/sec) on an H2-style workload
/// trace (the recorded ComplexConcurrency PolePosition circuit) across:
///
///   * seq/fullclock — sequential Algorithm 1 with the seed's always-full
///     VectorClock accumulated clocks (ablation baseline);
///   * seq/epoch     — sequential Algorithm 1 with epoch-compressed clocks
///     (the production CommutativityRaceDetector);
///   * parallel/shards=N[/batch=B] — the streaming shard pipeline at
///     1/2/4/8 shards, swept over the dispatch batch size (the canonical
///     per-shard entry uses the default batch).
///
/// Every configuration is timed with one warmup run and the median of the
/// requested repetitions (bench/report.h), so committed numbers are stable
/// enough to diff across PRs. Emits a machine-readable BENCH_detector.json.
///
/// Usage: ./parallel_scaling [workers] [queries-per-worker] [reps] [json-path]
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/ParallelDetector.h"
#include "report.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "workloads/PolePosition.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <thread>

using namespace crd;

namespace {

/// Sequential Algorithm 1 over an arbitrary accumulated-clock
/// representation; mirrors CommutativityRaceDetector for the ablation.
template <typename ClockRep> struct SequentialDetector {
  VectorClockState VCState;
  BasicAlgorithm1Engine<ClockRep> Engine;
  size_t EventIndex = 0;

  void processTrace(const Trace &T) {
    for (const Event &E : T) {
      ++EventIndex;
      if (E.isInvoke())
        Engine.onAction(E.action(), E.thread(), VCState.clockOf(E.thread()),
                        EventIndex - 1);
      VCState.process(E);
    }
  }
};

/// Records the ComplexConcurrency circuit as a replayable trace.
Trace recordH2Trace(unsigned Workers, unsigned Queries) {
  SimRuntime RT(/*Seed=*/2014);
  MVStore Store(RT);
  CircuitConfig Config;
  Config.WorkerThreads = Workers;
  Config.QueriesPerWorker = Queries;
  Config.Seed = 2014;
  buildCircuit(Circuit::ComplexConcurrency, RT, Store, Config);
  TraceRecorder Recorder;
  RT.run(Recorder);
  return Recorder.take();
}

} // namespace

static unsigned parsePositive(const char *Arg, const char *Name) {
  char *End = nullptr;
  unsigned long V = std::strtoul(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V == 0) {
    std::cerr << "invalid " << Name << " '" << Arg
              << "' (expected a positive integer)\n"
              << "usage: parallel_scaling [workers] [queries-per-worker] "
                 "[reps] [json-path]\n";
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

int main(int Argc, char **Argv) {
  unsigned Workers = Argc > 1 ? parsePositive(Argv[1], "workers") : 4;
  unsigned Queries = Argc > 2 ? parsePositive(Argv[2], "queries-per-worker") : 4000;
  unsigned Reps = Argc > 3 ? parsePositive(Argv[3], "reps") : 5;
  std::string JsonPath = Argc > 4 ? Argv[4] : "BENCH_detector.json";
  constexpr unsigned Warmup = 1;

  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep) {
    std::cerr << "spec translation failed:\n" << Diags.toString();
    return 1;
  }

  Trace T = recordH2Trace(Workers, Queries);
  std::cout << "H2 ComplexConcurrency trace: " << T.size() << " events ("
            << Workers << " workers x " << Queries
            << " queries), median of " << Reps << " reps after " << Warmup
            << " warmup\n\n";

  bench::BenchReport Report("parallel_scaling", "h2-complex-concurrency");
  // On a single-hardware-thread host the shard workers timeshare with the
  // pre-pass, so multi-shard configurations measure scheduling overhead,
  // not overlap; flag the artifact so downstream comparisons know the
  // parallel numbers carry no scaling signal.
  unsigned HostCpus = std::thread::hardware_concurrency();
  bool OverlapObservable = HostCpus > 1;
  Report.setFlag("parallel_overlap_observable", OverlapObservable);
  if (!OverlapObservable)
    std::cout << "warning: single-CPU host (" << HostCpus
              << " hardware thread); parallel configs cannot overlap and "
                 "their numbers measure overhead only\n\n";

  Report.add(bench::measureMedian("seq/fullclock", 0, T.size(), Warmup, Reps,
                                  [&] {
                                    SequentialDetector<FullClockRep> D;
                                    D.Engine.setDefaultProvider(Rep.get());
                                    D.processTrace(T);
                                    return D.Engine.races().size();
                                  }));
  Report.add(bench::measureMedian("seq/epoch", 0, T.size(), Warmup, Reps,
                                  [&] {
                                    CommutativityRaceDetector D;
                                    D.setDefaultProvider(Rep.get());
                                    D.processTrace(T);
                                    return D.races().size();
                                  }));
  // Shard sweep × dispatch batch size. The canonical "parallel/shards=N"
  // names keep the default batch so bench_compare.py can diff trajectories
  // across PRs; other batch sizes get an explicit suffix.
  for (unsigned Shards : {1u, 2u, 4u, 8u})
    for (size_t Batch : {size_t(1024), ParallelDetector::DefaultBatchSize,
                         size_t(16384)}) {
      std::string Name = "parallel/shards=" + std::to_string(Shards);
      if (Batch != ParallelDetector::DefaultBatchSize)
        Name += "/batch=" + std::to_string(Batch);
      Report.add(bench::measureMedian(Name, Shards, T.size(), Warmup, Reps,
                                      [&, Shards, Batch] {
                                        ParallelDetector D(Shards, Batch);
                                        D.setDefaultProvider(Rep.get());
                                        D.processTrace(T);
                                        return D.races().size();
                                      }));
    }

  const auto &Entries = Report.entries();
  double Baseline = Entries.front().EventsPerSec;
  std::cout << std::left << std::setw(30) << "config" << std::right
            << std::setw(14) << "events/sec" << std::setw(10) << "speedup"
            << std::setw(10) << "races" << '\n';
  for (const bench::BenchEntry &E : Entries)
    std::cout << std::left << std::setw(30) << E.Name << std::right
              << std::setw(14) << static_cast<uint64_t>(E.EventsPerSec)
              << std::setw(9) << std::fixed << std::setprecision(2)
              << (Baseline > 0 ? E.EventsPerSec / Baseline : 0.0) << "x"
              << std::setw(10) << E.Races << '\n';

  if (!Report.write(JsonPath)) {
    std::cerr << "failed to write " << JsonPath << '\n';
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << '\n';
  return 0;
}
