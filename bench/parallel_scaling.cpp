//===- bench/parallel_scaling.cpp - shard-scaling on the H2 workload ----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures detector throughput (trace events/sec) on an H2-style workload
/// trace (the recorded ComplexConcurrency PolePosition circuit) across:
///
///   * seq/fullclock — sequential Algorithm 1 with the seed's always-full
///     VectorClock accumulated clocks (ablation baseline);
///   * seq/epoch     — sequential Algorithm 1 with epoch-compressed clocks
///     (the production CommutativityRaceDetector);
///   * parallel/shards=N — the object-sharded pipeline at 1/2/4/8 shards.
///
/// Emits a machine-readable BENCH_detector.json (see bench/report.h) so the
/// perf trajectory can be tracked across PRs.
///
/// Usage: ./parallel_scaling [workers] [queries-per-worker] [reps] [json-path]
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/ParallelDetector.h"
#include "report.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "workloads/PolePosition.h"

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>

using namespace crd;

namespace {

/// Sequential Algorithm 1 over an arbitrary accumulated-clock
/// representation; mirrors CommutativityRaceDetector for the ablation.
template <typename ClockRep> struct SequentialDetector {
  VectorClockState VCState;
  BasicAlgorithm1Engine<ClockRep> Engine;
  size_t EventIndex = 0;

  void processTrace(const Trace &T) {
    for (const Event &E : T) {
      ++EventIndex;
      if (E.isInvoke())
        Engine.onAction(E.action(), E.thread(), VCState.clockOf(E.thread()),
                        EventIndex - 1);
      VCState.process(E);
    }
  }
};

/// Records the ComplexConcurrency circuit as a replayable trace.
Trace recordH2Trace(unsigned Workers, unsigned Queries) {
  SimRuntime RT(/*Seed=*/2014);
  MVStore Store(RT);
  CircuitConfig Config;
  Config.WorkerThreads = Workers;
  Config.QueriesPerWorker = Queries;
  Config.Seed = 2014;
  buildCircuit(Circuit::ComplexConcurrency, RT, Store, Config);
  TraceRecorder Recorder;
  RT.run(Recorder);
  return Recorder.take();
}

/// Times \p Run (which returns the race count) \p Reps times; keeps the
/// best wall time.
template <typename Fn>
bench::BenchEntry measure(const std::string &Name, unsigned Shards,
                          size_t Events, unsigned Reps, Fn Run) {
  bench::BenchEntry Entry;
  Entry.Name = Name;
  Entry.Shards = Shards;
  Entry.Events = Events;
  Entry.Seconds = 1e100;
  for (unsigned R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    size_t Races = Run();
    double Secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count();
    Entry.Races = Races;
    if (Secs < Entry.Seconds)
      Entry.Seconds = Secs;
  }
  Entry.EventsPerSec = Entry.Seconds > 0 ? Events / Entry.Seconds : 0.0;
  return Entry;
}

} // namespace

static unsigned parsePositive(const char *Arg, const char *Name) {
  char *End = nullptr;
  unsigned long V = std::strtoul(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V == 0) {
    std::cerr << "invalid " << Name << " '" << Arg
              << "' (expected a positive integer)\n"
              << "usage: parallel_scaling [workers] [queries-per-worker] "
                 "[reps] [json-path]\n";
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

int main(int Argc, char **Argv) {
  unsigned Workers = Argc > 1 ? parsePositive(Argv[1], "workers") : 4;
  unsigned Queries = Argc > 2 ? parsePositive(Argv[2], "queries-per-worker") : 4000;
  unsigned Reps = Argc > 3 ? parsePositive(Argv[3], "reps") : 3;
  std::string JsonPath = Argc > 4 ? Argv[4] : "BENCH_detector.json";

  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep) {
    std::cerr << "spec translation failed:\n" << Diags.toString();
    return 1;
  }

  Trace T = recordH2Trace(Workers, Queries);
  std::cout << "H2 ComplexConcurrency trace: " << T.size() << " events ("
            << Workers << " workers x " << Queries << " queries), best of "
            << Reps << " reps\n\n";

  bench::BenchReport Report("parallel_scaling", "h2-complex-concurrency");

  Report.add(measure("seq/fullclock", 0, T.size(), Reps, [&] {
    SequentialDetector<FullClockRep> D;
    D.Engine.setDefaultProvider(Rep.get());
    D.processTrace(T);
    return D.Engine.races().size();
  }));
  Report.add(measure("seq/epoch", 0, T.size(), Reps, [&] {
    CommutativityRaceDetector D;
    D.setDefaultProvider(Rep.get());
    D.processTrace(T);
    return D.races().size();
  }));
  for (unsigned Shards : {1u, 2u, 4u, 8u})
    Report.add(measure("parallel/shards=" + std::to_string(Shards), Shards,
                       T.size(), Reps, [&, Shards] {
                         ParallelDetector D(Shards);
                         D.setDefaultProvider(Rep.get());
                         D.processTrace(T);
                         return D.races().size();
                       }));

  const auto &Entries = Report.entries();
  double Baseline = Entries.front().EventsPerSec;
  std::cout << std::left << std::setw(22) << "config" << std::right
            << std::setw(14) << "events/sec" << std::setw(10) << "speedup"
            << std::setw(10) << "races" << '\n';
  for (const bench::BenchEntry &E : Entries)
    std::cout << std::left << std::setw(22) << E.Name << std::right
              << std::setw(14) << static_cast<uint64_t>(E.EventsPerSec)
              << std::setw(9) << std::fixed << std::setprecision(2)
              << (Baseline > 0 ? E.EventsPerSec / Baseline : 0.0) << "x"
              << std::setw(10) << E.Races << '\n';

  if (!Report.write(JsonPath)) {
    std::cerr << "failed to write " << JsonPath << '\n';
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << '\n';
  return 0;
}
