//===- bench/micro_atomicity.cpp - atomicity checker benchmarks ---------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline (quadratic pairwise) vs. online (incremental topological order)
/// conflict-serializability checking over the same traces: the streaming
/// checker scales near-linearly while the offline one is quadratic in the
/// number of actions.
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/AtomicityChecker.h"
#include "detect/OnlineAtomicity.h"
#include "trace/TraceBuilder.h"

#include <benchmark/benchmark.h>

using namespace crd;

namespace {

/// Two threads doing transactional read-modify-writes on a small key
/// space, with occasional size observers — plenty of conflicts, few
/// cycles.
Trace rmwTrace(size_t Blocks) {
  TraceBuilder TB;
  TB.fork(0, 1);
  int64_t Value0 = 0, Value1 = 0;
  for (size_t I = 0; I != Blocks; ++I) {
    uint32_t Tid = static_cast<uint32_t>(I % 2);
    int64_t Key = static_cast<int64_t>(Tid); // Disjoint keys: serializable.
    int64_t &Counter = Tid == 0 ? Value0 : Value1;
    TB.txBegin(Tid);
    TB.invoke(Tid, 1, "get", {Value::integer(Key)},
              Counter == 0 ? Value::nil() : Value::integer(Counter));
    TB.invoke(Tid, 1, "put", {Value::integer(Key), Value::integer(Counter + 1)},
              Counter == 0 ? Value::nil() : Value::integer(Counter));
    ++Counter;
    TB.txEnd(Tid);
  }
  return TB.take();
}

DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

void BM_OfflineAtomicity(benchmark::State &State) {
  Trace T = rmwTrace(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    AtomicityChecker Checker;
    Checker.setDefaultProvider(&dictRep());
    benchmark::DoNotOptimize(Checker.check(T).size());
  }
  State.SetComplexityN(State.range(0));
}

void BM_OnlineAtomicity(benchmark::State &State) {
  Trace T = rmwTrace(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    OnlineAtomicityChecker Checker;
    Checker.setDefaultProvider(&dictRep());
    Checker.processTrace(T);
    benchmark::DoNotOptimize(Checker.violations().size());
  }
  State.SetComplexityN(State.range(0));
}

} // namespace

BENCHMARK(BM_OfflineAtomicity)->RangeMultiplier(4)->Range(16, 1024)->Complexity();
BENCHMARK(BM_OnlineAtomicity)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

BENCHMARK_MAIN();
