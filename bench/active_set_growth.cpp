//===- bench/active_set_growth.cpp - §5.3 active set / reclamation ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §5.3 observation as a measurable series: the set active(o) grows
/// continuously with fresh keys; the object-reclamation optimization
/// (attaching analysis state to the object and dropping it when the
/// object dies) keeps the footprint bounded. One workload allocates a new
/// short-lived map per batch; we print the detector's live access point
/// count with and without reclamation.
///
/// Usage: ./active_set_growth [batches] [keys-per-batch]
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "trace/TraceBuilder.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>

using namespace crd;

int main(int Argc, char **Argv) {
  unsigned Batches = Argc > 1 ? std::atoi(Argv[1]) : 64;
  unsigned KeysPerBatch = Argc > 2 ? std::atoi(Argv[2]) : 128;

  DictionaryRep Rep;
  CommutativityRaceDetector WithReclaim, WithoutReclaim;
  WithReclaim.setDefaultProvider(&Rep);
  WithoutReclaim.setDefaultProvider(&Rep);

  std::cout << "Active access points after each batch (one short-lived map "
               "per batch,\n"
            << KeysPerBatch << " fresh keys each):\n\n"
            << std::right << std::setw(8) << "batch" << std::setw(20)
            << "without reclaim" << std::setw(18) << "with reclaim" << '\n'
            << std::string(46, '-') << '\n';

  for (unsigned B = 0; B != Batches; ++B) {
    for (unsigned K = 0; K != KeysPerBatch; ++K) {
      Event E = Event::invoke(
          ThreadId(0),
          Action(ObjectId(B), symbol("put"),
                 {Value::integer(static_cast<int64_t>(K)), Value::integer(1)},
                 Value::nil()));
      WithReclaim.process(E);
      WithoutReclaim.process(E);
    }
    // The map of batch B dies here (collected by the host program).
    WithReclaim.objectDied(ObjectId(B));

    if ((B + 1) % (Batches / 8 == 0 ? 1 : Batches / 8) == 0)
      std::cout << std::setw(8) << (B + 1) << std::setw(20)
                << WithoutReclaim.activePointCount() << std::setw(18)
                << WithReclaim.activePointCount() << '\n';
  }

  std::cout << "\nWithout reclamation the active set grows linearly with "
               "the number of dead\nobjects; with it, state is dropped as "
               "objects die (paper section 5.3).\n";
  return 0;
}
