//===- bench/ext_atomicity_workloads.cpp - torn blocks per circuit ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment: run the streaming commutativity-aware atomicity
/// checker (§8 generalization) over the H2 circuits and the snitch test.
/// MVStore commits and snitch rank recalculations are intended-atomic
/// blocks; the table reports how many end up torn by concurrent traffic.
/// Circuits without concurrent commits report zero — atomicity violations
/// need overlapping blocks, not just races.
///
/// Usage: ./ext_atomicity_workloads [workers] [queries-per-worker]
///
//===----------------------------------------------------------------------===//

#include "detect/OnlineAtomicity.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "workloads/PolePosition.h"
#include "workloads/Snitch.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>

using namespace crd;

int main(int Argc, char **Argv) {
  CircuitConfig Config;
  Config.WorkerThreads = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.QueriesPerWorker = Argc > 2 ? std::atoi(Argv[2]) : 500;
  Config.Seed = 2014;

  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep) {
    std::cerr << Diags.toString();
    return 1;
  }

  std::cout << "Extension: torn intended-atomic blocks per workload ("
            << Config.WorkerThreads << " workers x "
            << Config.QueriesPerWorker << " queries)\n\n"
            << std::left << std::setw(46) << "Workload" << std::right
            << std::setw(14) << "atomic blocks" << std::setw(14)
            << "torn blocks" << '\n'
            << std::string(74, '-') << '\n';

  for (Circuit C : AllCircuits) {
    SimRuntime RT(Config.Seed);
    MVStore Store(RT);
    buildCircuit(C, RT, Store, Config);

    OnlineAtomicityChecker Checker;
    Checker.setDefaultProvider(Rep.get());
    TraceRecorder Recorder;
    RT.run(Recorder);
    size_t Blocks = 0;
    for (const Event &E : Recorder.trace())
      if (E.kind() == EventKind::TxBegin)
        ++Blocks;
    Checker.processTrace(Recorder.trace());
    std::cout << std::left << std::setw(46) << circuitName(C) << std::right
              << std::setw(14) << Blocks << std::setw(14)
              << Checker.violations().size() << '\n';
  }

  {
    SnitchConfig SC;
    SC.UpdaterThreads = Config.WorkerThreads;
    SC.TimingsPerUpdater = Config.QueriesPerWorker;
    SC.ScoreRecalcs = Config.QueriesPerWorker / 5;
    SC.Seed = Config.Seed;
    SimRuntime RT(SC.Seed);
    DynamicEndpointSnitch Snitch(RT, SC.Hosts);
    buildSnitchTest(RT, Snitch, SC);

    OnlineAtomicityChecker Checker;
    Checker.setDefaultProvider(Rep.get());
    TraceRecorder Recorder;
    RT.run(Recorder);
    size_t Blocks = 0;
    for (const Event &E : Recorder.trace())
      if (E.kind() == EventKind::TxBegin)
        ++Blocks;
    Checker.processTrace(Recorder.trace());
    std::cout << std::left << std::setw(46) << "DynamicEndpointSnitch test"
              << std::right << std::setw(14) << Blocks << std::setw(14)
              << Checker.violations().size() << '\n';
  }

  std::cout << "\nTorn blocks correspond to the section-7 findings: commits "
               "computing chunk\nmetadata twice / losing freedPageSpace "
               "updates, and rank recalculations\nobserving the samples map "
               "mid-update.\n";
  return 0;
}
