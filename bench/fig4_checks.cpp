//===- bench/fig4_checks.cpp - Fig 4 ablation: checks per invocation ----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies Fig 4's motivation: when k threads each perform a fresh put
/// and the main thread then calls size(), an analysis working directly on
/// the logical specification performs k commutativity checks for the
/// size() invocation (one per put), while the access-point detector does a
/// constant number of probes (size's only conflict partner is o:resize).
/// Prints one series row per k — the "figure" is checks-vs-k.
///
/// Usage: ./fig4_checks [max-puts]
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/DirectDetector.h"
#include "spec/Builtins.h"
#include "trace/TraceBuilder.h"
#include "translate/Translator.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>

using namespace crd;

namespace {

/// k concurrent fresh puts (distinct keys) followed by a size() in main.
Trace putsThenSize(unsigned K) {
  TraceBuilder TB;
  for (unsigned I = 0; I != K; ++I)
    TB.fork(0, I + 1);
  for (unsigned I = 0; I != K; ++I)
    TB.invoke(I + 1, 1, "put",
              {Value::string("host" + std::to_string(I)), Value::integer(1)},
              Value::nil());
  TB.invoke(0, 1, "size", {}, Value::integer(K));
  return TB.take();
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned MaxPuts = Argc > 1 ? std::atoi(Argv[1]) : 4096;

  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep) {
    std::cerr << Diags.toString();
    return 1;
  }

  std::cout << "Fig 4 ablation: conflict checks attributable to the final "
               "size() invocation\n\n";
  std::cout << std::right << std::setw(10) << "puts k" << std::setw(22)
            << "direct (spec) checks" << std::setw(26)
            << "access point (RD2) probes" << '\n'
            << std::string(58, '-') << '\n';

  for (unsigned K = 1; K <= MaxPuts; K *= 2) {
    Trace T = putsThenSize(K);
    Trace WithoutSize(
        std::vector<Event>(T.events().begin(), T.events().end() - 1));

    DirectCommutativityDetector DirectAll, DirectPrefix;
    DirectAll.setDefaultSpec(&dictionarySpec());
    DirectPrefix.setDefaultSpec(&dictionarySpec());
    DirectAll.processTrace(T);
    DirectPrefix.processTrace(WithoutSize);
    size_t DirectChecks =
        DirectAll.conflictChecks() - DirectPrefix.conflictChecks();

    CommutativityRaceDetector Alg1All, Alg1Prefix;
    Alg1All.setDefaultProvider(Rep.get());
    Alg1Prefix.setDefaultProvider(Rep.get());
    Alg1All.processTrace(T);
    Alg1Prefix.processTrace(WithoutSize);
    size_t Alg1Checks =
        Alg1All.conflictChecks() - Alg1Prefix.conflictChecks();

    std::cout << std::setw(10) << K << std::setw(22) << DirectChecks
              << std::setw(26) << Alg1Checks << '\n';
  }

  std::cout << "\nThe direct column grows linearly in k; the access point "
               "column is constant\n(size() probes only o:resize, Fig 4).\n";
  return 0;
}
