//===- bench/table2_cassandra.cpp - Table 2, Cassandra row --------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Cassandra row of paper Table 2: the
/// DynamicEndpointSnitch test timed uninstrumented / under FASTTRACK /
/// under RD2 (the paper reports seconds for this row), plus race counts.
/// The reproduced shape: RD2 finds *more* commutativity races here than
/// FASTTRACK finds distinct low-level races — the samples/size interaction
/// is invisible at the read-write level.
///
/// Usage: ./table2_cassandra [updaters] [timings-per-updater]
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>

using namespace crd;

int main(int Argc, char **Argv) {
  SnitchConfig Config;
  Config.UpdaterThreads = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.TimingsPerUpdater = Argc > 2 ? std::atoi(Argv[2]) : 5000;
  Config.ScoreRecalcs = Config.TimingsPerUpdater / 5;
  Config.Seed = 2014;

  std::cout << "Table 2 (Cassandra row) — " << Config.UpdaterThreads
            << " updaters x " << Config.TimingsPerUpdater << " timings, "
            << Config.ScoreRecalcs << " rank recalculations\n\n";

  std::cout << std::left << std::setw(16) << "Mode" << std::right
            << std::setw(12) << "seconds" << std::setw(18) << "races (dist)"
            << '\n'
            << std::string(46, '-') << '\n';
  for (AnalysisMode M : {AnalysisMode::Uninstrumented, AnalysisMode::FastTrack,
                         AnalysisMode::RD2}) {
    RunResult R = runSnitchTest(M, Config);
    std::cout << std::left << std::setw(16) << modeName(M) << std::right
              << std::setw(12) << std::fixed << std::setprecision(3)
              << R.Seconds;
    if (M == AnalysisMode::Uninstrumented)
      std::cout << std::setw(18) << "-";
    else
      std::cout << std::setw(18)
                << (std::to_string(R.RacesTotal) + " (" +
                    std::to_string(R.RacesDistinct) + ")");
    std::cout << '\n';
  }
  return 0;
}
