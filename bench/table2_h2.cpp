//===- bench/table2_h2.cpp - Table 2, H2 PolePosition block -------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the H2 block of paper Table 2: for each PolePosition
/// circuit, throughput (qps) uninstrumented / under FASTTRACK / under RD2,
/// plus total and distinct race counts for both detectors. Absolute
/// numbers reflect the simulated substrate; the paper's *shape* —
/// instrumented runs are several times slower, RD2 overhead is comparable
/// to FASTTRACK, FASTTRACK reports many redundant low-level races while
/// RD2 reports few distinct commutativity races (and none on the
/// query-centric and single-threaded circuits) — is what this reproduces.
///
/// Usage: ./table2_h2 [workers] [queries-per-worker]
///
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include <cstdlib>
#include <iostream>

using namespace crd;

int main(int Argc, char **Argv) {
  CircuitConfig Config;
  Config.WorkerThreads = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.QueriesPerWorker = Argc > 2 ? std::atoi(Argv[2]) : 2000;
  Config.Seed = 2014;

  std::cout << "Table 2 (H2 / PolePosition block) — " << Config.WorkerThreads
            << " workers x " << Config.QueriesPerWorker << " queries\n\n";

  std::vector<RunResult> Results;
  for (Circuit C : AllCircuits)
    for (AnalysisMode M : {AnalysisMode::Uninstrumented,
                           AnalysisMode::FastTrack, AnalysisMode::RD2}) {
      Results.push_back(runH2Circuit(C, M, Config));
      std::cerr << "  ran " << circuitName(C) << " / " << modeName(M) << "\n";
    }

  std::cout << '\n';
  printTable2(std::cout, Results);
  return 0;
}
