//===- bench/micro_detector.cpp - detector throughput microbenchmarks ---------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "detect/ParallelDetector.h"
#include "spec/Builtins.h"
#include "trace/TraceBuilder.h"
#include "translate/Translator.h"

#include <benchmark/benchmark.h>

using namespace crd;

namespace {

Trace mixedActionTrace(size_t N, unsigned Keys) {
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2).fork(0, 3);
  for (size_t I = 0; I != N; ++I) {
    uint32_t Tid = static_cast<uint32_t>(I % 4);
    int64_t Key = static_cast<int64_t>((I * 7) % Keys);
    switch (I % 3) {
    case 0:
      TB.invoke(Tid, 1, "put", {Value::integer(Key), Value::integer(1)},
                Value::nil());
      break;
    case 1:
      TB.invoke(Tid, 1, "get", {Value::integer(Key)}, Value::integer(1));
      break;
    case 2:
      TB.invoke(Tid, 1, "size", {}, Value::integer(5));
      break;
    }
  }
  return TB.take();
}

Trace memoryTrace(size_t N, unsigned Vars) {
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2).fork(0, 3);
  for (size_t I = 0; I != N; ++I) {
    uint32_t Tid = static_cast<uint32_t>(I % 4);
    uint32_t Var = static_cast<uint32_t>((I * 13) % Vars);
    if (I % 4 == 0)
      TB.write(Tid, Var);
    else
      TB.read(Tid, Var);
  }
  return TB.take();
}

const TranslatedRep &translatedDict() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(dictionarySpec(), Diags);
    if (!R)
      abort();
    return R;
  }();
  return *Rep;
}

void BM_Algorithm1TranslatedRep(benchmark::State &State) {
  Trace T = mixedActionTrace(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(&translatedDict());
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

void BM_Algorithm1HandWrittenRep(benchmark::State &State) {
  static DictionaryRep Hand;
  Trace T = mixedActionTrace(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(&Hand);
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

/// Ablation baseline: Algorithm 1 with the seed's always-full VectorClock
/// accumulated clocks instead of epoch compression.
void BM_Algorithm1FullClockAblation(benchmark::State &State) {
  Trace T = mixedActionTrace(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    VectorClockState VCState;
    BasicAlgorithm1Engine<FullClockRep> Engine;
    Engine.setDefaultProvider(&translatedDict());
    size_t Index = 0;
    for (const Event &E : T) {
      if (E.isInvoke())
        Engine.onAction(E.action(), E.thread(), VCState.clockOf(E.thread()),
                        Index);
      VCState.process(E);
      ++Index;
    }
    benchmark::DoNotOptimize(Engine.races().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

/// Object-sharded pipeline; range(1) = shard count. The mixed trace is
/// spread over 8 objects so shards receive balanced buckets.
void BM_ParallelDetector(benchmark::State &State) {
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2).fork(0, 3);
  size_t N = static_cast<size_t>(State.range(0));
  for (size_t I = 0; I != N; ++I) {
    uint32_t Tid = static_cast<uint32_t>(I % 4);
    uint32_t Obj = static_cast<uint32_t>(I % 8);
    int64_t Key = static_cast<int64_t>((I * 7) % 64);
    if (I % 3 == 0)
      TB.invoke(Tid, Obj, "put", {Value::integer(Key), Value::integer(1)},
                Value::nil());
    else
      TB.invoke(Tid, Obj, "get", {Value::integer(Key)}, Value::integer(1));
  }
  Trace T = TB.take();
  for (auto _ : State) {
    ParallelDetector Detector(static_cast<unsigned>(State.range(1)));
    Detector.setDefaultProvider(&translatedDict());
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

void BM_FastTrack(benchmark::State &State) {
  Trace T = memoryTrace(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    FastTrackDetector Detector;
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

} // namespace

BENCHMARK(BM_Algorithm1TranslatedRep)->Arg(1024)->Arg(8192);
BENCHMARK(BM_Algorithm1HandWrittenRep)->Arg(1024)->Arg(8192);
BENCHMARK(BM_Algorithm1FullClockAblation)->Arg(1024)->Arg(8192);
BENCHMARK(BM_ParallelDetector)
    ->Args({8192, 1})
    ->Args({8192, 2})
    ->Args({8192, 4})
    ->Args({8192, 8});
BENCHMARK(BM_FastTrack)->Arg(1024)->Arg(8192);

BENCHMARK_MAIN();
