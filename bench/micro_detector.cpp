//===- bench/micro_detector.cpp - detector throughput microbenchmarks ---------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "spec/Builtins.h"
#include "trace/TraceBuilder.h"
#include "translate/Translator.h"

#include <benchmark/benchmark.h>

using namespace crd;

namespace {

Trace mixedActionTrace(size_t N, unsigned Keys) {
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2).fork(0, 3);
  for (size_t I = 0; I != N; ++I) {
    uint32_t Tid = static_cast<uint32_t>(I % 4);
    int64_t Key = static_cast<int64_t>((I * 7) % Keys);
    switch (I % 3) {
    case 0:
      TB.invoke(Tid, 1, "put", {Value::integer(Key), Value::integer(1)},
                Value::nil());
      break;
    case 1:
      TB.invoke(Tid, 1, "get", {Value::integer(Key)}, Value::integer(1));
      break;
    case 2:
      TB.invoke(Tid, 1, "size", {}, Value::integer(5));
      break;
    }
  }
  return TB.take();
}

Trace memoryTrace(size_t N, unsigned Vars) {
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2).fork(0, 3);
  for (size_t I = 0; I != N; ++I) {
    uint32_t Tid = static_cast<uint32_t>(I % 4);
    uint32_t Var = static_cast<uint32_t>((I * 13) % Vars);
    if (I % 4 == 0)
      TB.write(Tid, Var);
    else
      TB.read(Tid, Var);
  }
  return TB.take();
}

const TranslatedRep &translatedDict() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(dictionarySpec(), Diags);
    if (!R)
      abort();
    return R;
  }();
  return *Rep;
}

void BM_Algorithm1TranslatedRep(benchmark::State &State) {
  Trace T = mixedActionTrace(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(&translatedDict());
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

void BM_Algorithm1HandWrittenRep(benchmark::State &State) {
  static DictionaryRep Hand;
  Trace T = mixedActionTrace(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(&Hand);
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

void BM_FastTrack(benchmark::State &State) {
  Trace T = memoryTrace(static_cast<size_t>(State.range(0)), 64);
  for (auto _ : State) {
    FastTrackDetector Detector;
    Detector.processTrace(T);
    benchmark::DoNotOptimize(Detector.races().size());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}

} // namespace

BENCHMARK(BM_Algorithm1TranslatedRep)->Arg(1024)->Arg(8192);
BENCHMARK(BM_Algorithm1HandWrittenRep)->Arg(1024)->Arg(8192);
BENCHMARK(BM_FastTrack)->Arg(1024)->Arg(8192);

BENCHMARK_MAIN();
