//===- bench/report.h - Machine-readable bench reports ----------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny JSON emitter for benchmark results, so successive PRs can track
/// the performance trajectory from committed BENCH_*.json artifacts without
/// parsing human-oriented tables. One report = one tool run = one list of
/// named measurements.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_BENCH_REPORT_H
#define CRD_BENCH_REPORT_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(CRD_BENCH_ALLOC_COUNT)
#include <atomic>
#include <cstdlib>
#include <new>
#endif

namespace crd {
namespace bench {

#if defined(CRD_BENCH_ALLOC_COUNT)
/// Global heap-allocation counter backing the allocs_per_event metric.
/// Monotonic; callers sample before/after a run and difference the reads.
inline std::atomic<uint64_t> &allocCounter() {
  static std::atomic<uint64_t> Counter{0};
  return Counter;
}

inline uint64_t allocCount() {
  return allocCounter().load(std::memory_order_relaxed);
}
#else
inline uint64_t allocCount() { return 0; }
#endif

/// Best-effort short git revision of the working tree the bench binary is
/// run from (not where it was built — the artifact describes the code that
/// produced the numbers, and a stale binary is a regeneration bug that the
/// rev makes visible). "unknown" when git or the repository is absent.
inline std::string gitRevision() {
#if defined(_WIN32)
  return "unknown";
#else
  std::string Rev;
  if (FILE *P = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char Buf[64];
    if (std::fgets(Buf, sizeof(Buf), P))
      Rev.assign(Buf);
    while (!Rev.empty() && (Rev.back() == '\n' || Rev.back() == '\r'))
      Rev.pop_back();
    if (::pclose(P) != 0)
      Rev.clear();
  }
  return Rev.empty() ? "unknown" : Rev;
#endif
}

/// One measured configuration.
struct BenchEntry {
  std::string Name;      ///< e.g. "parallel/shards=4".
  unsigned Shards = 0;   ///< 0 for sequential configurations.
  size_t Events = 0;     ///< Trace events processed per run.
  double Seconds = 0.0;  ///< Median wall time over the repetitions.
  double EventsPerSec = 0.0;
  size_t Races = 0;      ///< Races reported (sanity anchor for diffs).
  unsigned Reps = 0;     ///< Timed repetitions behind the median.
  /// Median heap allocations per event across the timed repetitions.
  /// Only meaningful when the tool is built with CRD_BENCH_ALLOC_COUNT
  /// (the define routes global operator new through a counter); -1 when
  /// the counter is compiled out, and the JSON field is omitted.
  double AllocsPerEvent = -1.0;
  /// Events rejected by backpressure during the run (ingestion benches
  /// under DropNewest). -1 = not applicable, and the JSON field is
  /// omitted. Informational: bench_compare.py ignores it — drop counts
  /// are scheduling-dependent, not a regression signal.
  int64_t Drops = -1;
};

/// Times \p Run (which returns the race count) with \p Warmup discarded
/// warmup runs followed by \p Reps timed repetitions, and keeps the median
/// wall time. The warmup pulls code and the workload's data into cache;
/// the median (unlike best-of or mean) is robust against both one-off
/// stalls and turbo/cold-start flatter, so successive PRs can compare
/// committed BENCH_*.json numbers without rerunning each other.
template <typename Fn>
BenchEntry measureMedian(const std::string &Name, unsigned Shards,
                         size_t Events, unsigned Warmup, unsigned Reps,
                         Fn Run) {
  BenchEntry Entry;
  Entry.Name = Name;
  Entry.Shards = Shards;
  Entry.Events = Events;
  Entry.Reps = Reps;
  for (unsigned W = 0; W != Warmup; ++W)
    Entry.Races = Run();
  std::vector<double> Times;
  Times.reserve(Reps);
#if defined(CRD_BENCH_ALLOC_COUNT)
  std::vector<uint64_t> Allocs;
  Allocs.reserve(Reps);
#endif
  for (unsigned R = 0; R != Reps; ++R) {
    uint64_t AllocsBefore = allocCount();
    auto Start = std::chrono::steady_clock::now();
    Entry.Races = Run();
    Times.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count());
#if defined(CRD_BENCH_ALLOC_COUNT)
    Allocs.push_back(allocCount() - AllocsBefore);
#else
    (void)AllocsBefore;
#endif
  }
  std::sort(Times.begin(), Times.end());
  Entry.Seconds = Times.empty()
                      ? 0.0
                      : (Times[(Times.size() - 1) / 2] + Times[Times.size() / 2]) / 2;
  Entry.EventsPerSec = Entry.Seconds > 0 ? Events / Entry.Seconds : 0.0;
#if defined(CRD_BENCH_ALLOC_COUNT)
  if (!Allocs.empty() && Events != 0) {
    // Median, like the wall time: the warmup reps already absorbed the
    // one-time pool/table growth, so steady state should read 0.
    std::sort(Allocs.begin(), Allocs.end());
    Entry.AllocsPerEvent =
        static_cast<double>(Allocs[Allocs.size() / 2]) / Events;
  }
#endif
  return Entry;
}

/// Accumulates entries and renders them as a JSON document.
class BenchReport {
public:
  explicit BenchReport(std::string Tool, std::string Workload)
      : Tool(std::move(Tool)), Workload(std::move(Workload)) {}

  void add(BenchEntry Entry) { Entries.push_back(std::move(Entry)); }

  /// Attaches an extra top-level boolean field (e.g.
  /// "parallel_overlap_observable") emitted between the provenance fields
  /// and the benchmarks array. Last write wins for a repeated name.
  void setFlag(std::string Name, bool Value) {
    for (auto &F : Flags)
      if (F.first == Name) {
        F.second = Value;
        return;
      }
    Flags.emplace_back(std::move(Name), Value);
  }

  /// Renders e.g.:
  /// {"tool":"parallel_scaling","workload":"h2-complex",
  ///  "host_cpus":4,"git_rev":"abc123","benchmarks":[...]}
  ///
  /// host_cpus and git_rev record where the numbers came from:
  /// bench_compare.py refuses to diff artifacts whose host_cpus differ,
  /// because throughput ratios across host classes are noise, not signal.
  std::string toJson() const {
    std::ostringstream OS;
    OS << "{\n  \"tool\": \"" << Tool << "\",\n  \"workload\": \"" << Workload
       << "\",\n  \"host_cpus\": " << std::thread::hardware_concurrency()
       << ",\n  \"git_rev\": \"" << gitRevision() << "\",\n";
    for (const auto &F : Flags)
      OS << "  \"" << F.first << "\": " << (F.second ? "true" : "false")
         << ",\n";
    OS << "  \"benchmarks\": [\n";
    for (size_t I = 0; I != Entries.size(); ++I) {
      const BenchEntry &E = Entries[I];
      OS << "    {\"name\": \"" << E.Name << "\", \"shards\": " << E.Shards
         << ", \"events\": " << E.Events << ", \"seconds\": " << E.Seconds
         << ", \"events_per_sec\": " << static_cast<uint64_t>(E.EventsPerSec)
         << ", \"races\": " << E.Races << ", \"reps\": " << E.Reps;
      if (E.AllocsPerEvent >= 0)
        OS << ", \"allocs_per_event\": " << E.AllocsPerEvent;
      if (E.Drops >= 0)
        OS << ", \"drops\": " << E.Drops;
      OS << "}" << (I + 1 == Entries.size() ? "\n" : ",\n");
    }
    OS << "  ]\n}\n";
    return OS.str();
  }

  /// Writes the JSON document to \p Path. Returns false on I/O failure.
  bool write(const std::string &Path) const {
    std::ofstream Out(Path);
    if (!Out)
      return false;
    Out << toJson();
    return static_cast<bool>(Out);
  }

  const std::vector<BenchEntry> &entries() const { return Entries; }

private:
  std::string Tool;
  std::string Workload;
  std::vector<std::pair<std::string, bool>> Flags;
  std::vector<BenchEntry> Entries;
};

} // namespace bench
} // namespace crd

#if defined(CRD_BENCH_ALLOC_COUNT)
//===----------------------------------------------------------------------===//
// Replacement global allocation functions (bench binaries only).
//
// Every heap allocation bumps allocCounter(), which is how the benches
// verify the hot path's zero-allocs-per-event steady state. Defined in this
// header because each bench tool is a single translation unit; the define
// is applied per target, never to the libraries, so production binaries
// keep the stock allocator.
//===----------------------------------------------------------------------===//

namespace crd::bench::detail {

inline void *countedAlloc(std::size_t Size) {
  crd::bench::allocCounter().fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

inline void *countedAlignedAlloc(std::size_t Size, std::size_t Align) {
  crd::bench::allocCounter().fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t Rounded = (Size + Align - 1) / Align * Align;
  if (void *P = std::aligned_alloc(Align, Rounded ? Rounded : Align))
    return P;
  throw std::bad_alloc();
}

} // namespace crd::bench::detail

void *operator new(std::size_t Size) {
  return crd::bench::detail::countedAlloc(Size);
}
void *operator new[](std::size_t Size) {
  return crd::bench::detail::countedAlloc(Size);
}
void *operator new(std::size_t Size, std::align_val_t Align) {
  return crd::bench::detail::countedAlignedAlloc(
      Size, static_cast<std::size_t>(Align));
}
void *operator new[](std::size_t Size, std::align_val_t Align) {
  return crd::bench::detail::countedAlignedAlloc(
      Size, static_cast<std::size_t>(Align));
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
#endif // CRD_BENCH_ALLOC_COUNT

#endif // CRD_BENCH_REPORT_H
