//===- bench/report.h - Machine-readable bench reports ----------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny JSON emitter for benchmark results, so successive PRs can track
/// the performance trajectory from committed BENCH_*.json artifacts without
/// parsing human-oriented tables. One report = one tool run = one list of
/// named measurements.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_BENCH_REPORT_H
#define CRD_BENCH_REPORT_H

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace crd {
namespace bench {

/// One measured configuration.
struct BenchEntry {
  std::string Name;      ///< e.g. "parallel/shards=4".
  unsigned Shards = 0;   ///< 0 for sequential configurations.
  size_t Events = 0;     ///< Trace events processed per run.
  double Seconds = 0.0;  ///< Median wall time over the repetitions.
  double EventsPerSec = 0.0;
  size_t Races = 0;      ///< Races reported (sanity anchor for diffs).
  unsigned Reps = 0;     ///< Timed repetitions behind the median.
};

/// Times \p Run (which returns the race count) with \p Warmup discarded
/// warmup runs followed by \p Reps timed repetitions, and keeps the median
/// wall time. The warmup pulls code and the workload's data into cache;
/// the median (unlike best-of or mean) is robust against both one-off
/// stalls and turbo/cold-start flatter, so successive PRs can compare
/// committed BENCH_*.json numbers without rerunning each other.
template <typename Fn>
BenchEntry measureMedian(const std::string &Name, unsigned Shards,
                         size_t Events, unsigned Warmup, unsigned Reps,
                         Fn Run) {
  BenchEntry Entry;
  Entry.Name = Name;
  Entry.Shards = Shards;
  Entry.Events = Events;
  Entry.Reps = Reps;
  for (unsigned W = 0; W != Warmup; ++W)
    Entry.Races = Run();
  std::vector<double> Times;
  Times.reserve(Reps);
  for (unsigned R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    Entry.Races = Run();
    Times.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
            .count());
  }
  std::sort(Times.begin(), Times.end());
  Entry.Seconds = Times.empty()
                      ? 0.0
                      : (Times[(Times.size() - 1) / 2] + Times[Times.size() / 2]) / 2;
  Entry.EventsPerSec = Entry.Seconds > 0 ? Events / Entry.Seconds : 0.0;
  return Entry;
}

/// Accumulates entries and renders them as a JSON document.
class BenchReport {
public:
  explicit BenchReport(std::string Tool, std::string Workload)
      : Tool(std::move(Tool)), Workload(std::move(Workload)) {}

  void add(BenchEntry Entry) { Entries.push_back(std::move(Entry)); }

  /// Renders e.g.:
  /// {"tool":"parallel_scaling","workload":"h2-complex","benchmarks":[...]}
  std::string toJson() const {
    std::ostringstream OS;
    OS << "{\n  \"tool\": \"" << Tool << "\",\n  \"workload\": \"" << Workload
       << "\",\n  \"benchmarks\": [\n";
    for (size_t I = 0; I != Entries.size(); ++I) {
      const BenchEntry &E = Entries[I];
      OS << "    {\"name\": \"" << E.Name << "\", \"shards\": " << E.Shards
         << ", \"events\": " << E.Events << ", \"seconds\": " << E.Seconds
         << ", \"events_per_sec\": " << static_cast<uint64_t>(E.EventsPerSec)
         << ", \"races\": " << E.Races << ", \"reps\": " << E.Reps << "}"
         << (I + 1 == Entries.size() ? "\n" : ",\n");
    }
    OS << "  ]\n}\n";
    return OS.str();
  }

  /// Writes the JSON document to \p Path. Returns false on I/O failure.
  bool write(const std::string &Path) const {
    std::ofstream Out(Path);
    if (!Out)
      return false;
    Out << toJson();
    return static_cast<bool>(Out);
  }

  const std::vector<BenchEntry> &entries() const { return Entries; }

private:
  std::string Tool;
  std::string Workload;
  std::vector<BenchEntry> Entries;
};

} // namespace bench
} // namespace crd

#endif // CRD_BENCH_REPORT_H
