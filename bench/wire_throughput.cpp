//===- bench/wire_throughput.cpp - text vs binary ingestion throughput --------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures trace ingestion throughput (events/sec) and density
/// (bytes/event) on an H2-style workload trace (the recorded
/// ComplexConcurrency PolePosition circuit) across:
///
///   * text/parse          — parseTrace over the rendered text form;
///   * binary/decode       — WireReader draining the chunked wire encoding;
///   * binary/decode+detect — BinaryStreamSource feeding the sequential
///     detector through StreamPipeline (the `crd check` hot path);
///   * text/parse+detect   — the materialized baseline for the same work.
///
/// The acceptance bar for the wire format is binary/decode ≥ 2× text/parse.
/// Emits a machine-readable BENCH_wire.json (see bench/report.h) so the
/// ingestion trajectory can be tracked across PRs.
///
/// Usage: ./wire_throughput [workers] [queries-per-worker] [reps] [json-path]
///
//===----------------------------------------------------------------------===//

#include "report.h"
#include "spec/Builtins.h"
#include "trace/TraceIO.h"
#include "translate/Translator.h"
#include "wire/StreamPipeline.h"
#include "wire/WireReader.h"
#include "wire/WireWriter.h"
#include "workloads/PolePosition.h"

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>

using namespace crd;
using namespace crd::wire;

namespace {

/// Records the ComplexConcurrency circuit as a replayable trace.
Trace recordH2Trace(unsigned Workers, unsigned Queries) {
  SimRuntime RT(/*Seed=*/2014);
  MVStore Store(RT);
  CircuitConfig Config;
  Config.WorkerThreads = Workers;
  Config.QueriesPerWorker = Queries;
  Config.Seed = 2014;
  buildCircuit(Circuit::ComplexConcurrency, RT, Store, Config);
  TraceRecorder Recorder;
  RT.run(Recorder);
  return Recorder.take();
}

/// Shared warmup + median-of-N timing (bench/report.h) with this tool's
/// signature: ingestion configs have no shard dimension.
template <typename Fn>
bench::BenchEntry measure(const std::string &Name, size_t Events,
                          unsigned Reps, Fn Run) {
  return bench::measureMedian(Name, /*Shards=*/0, Events, /*Warmup=*/1, Reps,
                              std::move(Run));
}

void printRow(const bench::BenchEntry &E, size_t Bytes) {
  std::cout << "  " << std::left << std::setw(22) << E.Name << std::right
            << std::setw(12) << static_cast<uint64_t>(E.EventsPerSec)
            << " events/s" << std::setw(9) << std::fixed
            << std::setprecision(1)
            << (E.Events ? double(Bytes) / double(E.Events) : 0.0)
            << " B/event  races=" << E.Races << "\n";
}

} // namespace

static unsigned parsePositive(const char *Arg, const char *Name) {
  char *End = nullptr;
  unsigned long V = std::strtoul(Arg, &End, 10);
  if (End == Arg || *End != '\0' || V == 0) {
    std::cerr << "invalid " << Name << " '" << Arg
              << "' (expected a positive integer)\n"
              << "usage: wire_throughput [workers] [queries-per-worker] "
                 "[reps] [json-path]\n";
    std::exit(2);
  }
  return static_cast<unsigned>(V);
}

int main(int Argc, char **Argv) {
  unsigned Workers = Argc > 1 ? parsePositive(Argv[1], "workers") : 4;
  unsigned Queries =
      Argc > 2 ? parsePositive(Argv[2], "queries-per-worker") : 4000;
  unsigned Reps = Argc > 3 ? parsePositive(Argv[3], "reps") : 3;
  std::string JsonPath = Argc > 4 ? Argv[4] : "BENCH_wire.json";

  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep) {
    std::cerr << "spec translation failed:\n" << Diags.toString();
    return 1;
  }

  Trace T = recordH2Trace(Workers, Queries);
  std::string Text = traceToString(T);
  std::ostringstream WireOS;
  {
    WireWriter Writer(WireOS);
    Writer.writeTrace(T);
    Writer.finish();
  }
  std::string Wire = WireOS.str();

  std::cout << "H2 ComplexConcurrency trace: " << T.size() << " events, "
            << Text.size() << " text bytes, " << Wire.size()
            << " wire bytes (" << std::fixed << std::setprecision(2)
            << double(Text.size()) / double(Wire.size())
            << "x compression), median of " << Reps << " reps\n\n";

  bench::BenchReport Report("wire_throughput", "h2-complex-concurrency");

  bench::BenchEntry TextParse = measure("text/parse", T.size(), Reps, [&] {
    DiagnosticEngine D;
    auto Parsed = parseTrace(Text, D);
    if (!Parsed || Parsed->size() != T.size())
      std::abort();
    return size_t(0);
  });
  Report.add(TextParse);
  printRow(TextParse, Text.size());

  bench::BenchEntry BinDecode = measure("binary/decode", T.size(), Reps, [&] {
    std::istringstream In(Wire);
    DiagnosticEngine D;
    WireReader Reader(In, D);
    Event E = Event::txBegin(ThreadId(0));
    while (Reader.next(E))
      ;
    if (Reader.failed() || Reader.eventsRead() != T.size())
      std::abort();
    return size_t(0);
  });
  Report.add(BinDecode);
  printRow(BinDecode, Wire.size());

  bench::BenchEntry BinDetect =
      measure("binary/decode+detect", T.size(), Reps, [&] {
        std::istringstream In(Wire);
        DiagnosticEngine D;
        BinaryStreamSource Source(In, D);
        StreamPipeline P({Backend::Sequential});
        P.setDefaultProvider(Rep.get());
        StreamSummary S = P.run(Source);
        if (Source.failed() || S.Events != T.size())
          std::abort();
        return S.Races;
      });
  Report.add(BinDetect);
  printRow(BinDetect, Wire.size());

  bench::BenchEntry TextDetect =
      measure("text/parse+detect", T.size(), Reps, [&] {
        DiagnosticEngine D;
        auto Parsed = parseTrace(Text, D);
        if (!Parsed)
          std::abort();
        CommutativityRaceDetector Det;
        Det.setDefaultProvider(Rep.get());
        Det.processTrace(*Parsed);
        return Det.races().size();
      });
  Report.add(TextDetect);
  printRow(TextDetect, Text.size());

  double Speedup = TextParse.Seconds / BinDecode.Seconds;
  std::cout << "\n  binary decode speedup over text parse: " << std::fixed
            << std::setprecision(2) << Speedup << "x"
            << (Speedup >= 2.0 ? "" : "  (below the 2x acceptance bar!)")
            << "\n";
  if (BinDetect.Races != TextDetect.Races) {
    std::cerr << "race count mismatch between ingestion paths\n";
    return 1;
  }

  if (!Report.write(JsonPath)) {
    std::cerr << "failed to write " << JsonPath << "\n";
    return 1;
  }
  std::cout << "\nwrote " << JsonPath << "\n";
  return Speedup >= 2.0 ? 0 : 1;
}
